//! The extended burst-mode machine representation and its edit primitives.
//!
//! Output bursts are stored as *toggles* (the set of output signals that
//! change); the concrete rise/fall direction at any transition follows from
//! the machine's value labelling (see [`crate::validate::label_values`]).
//! This makes the paper's local transforms — which move output events
//! between bursts — structurally simple and always polarity-consistent.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::XbmError;
use crate::signal::{SignalId, SignalInfo, SignalKind};

/// Identifies a state of an [`XbmMachine`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) u32);

impl StateId {
    /// Creates an id from a raw index (test fixtures / deserialization).
    pub fn from_raw(raw: u32) -> Self {
        StateId(raw)
    }

    /// The raw index behind this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// How an input signal participates in an input burst.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TermKind {
    /// Compulsory rising edge (`s+`).
    Rise,
    /// Compulsory falling edge (`s-`).
    Fall,
    /// Directed don't-care toward 1 (`s*+`): may rise any time from here;
    /// collected by a later compulsory `s+`.
    DdcRise,
    /// Directed don't-care toward 0 (`s*-`).
    DdcFall,
    /// Sampled level, must be 1 when the compulsory edges complete (`<s+>`).
    LevelHigh,
    /// Sampled level, must be 0 when the compulsory edges complete (`<s->`).
    LevelLow,
}

impl TermKind {
    /// Whether this term must *arrive* for the burst to complete.
    pub fn is_compulsory(self) -> bool {
        matches!(self, TermKind::Rise | TermKind::Fall)
    }

    /// Whether this term is a sampled level.
    pub fn is_level(self) -> bool {
        matches!(self, TermKind::LevelHigh | TermKind::LevelLow)
    }

    /// Whether this term is a directed don't-care.
    pub fn is_ddc(self) -> bool {
        matches!(self, TermKind::DdcRise | TermKind::DdcFall)
    }

    /// Target value of the signal once the term completes (levels: the
    /// sampled value).
    pub fn target(self) -> bool {
        matches!(
            self,
            TermKind::Rise | TermKind::DdcRise | TermKind::LevelHigh
        )
    }
}

/// One input-burst term: a signal with its participation kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Term {
    /// The input signal.
    pub signal: SignalId,
    /// How it participates.
    pub kind: TermKind,
}

impl Term {
    /// Compulsory rising edge `s+`.
    pub fn rise(signal: SignalId) -> Self {
        Term {
            signal,
            kind: TermKind::Rise,
        }
    }

    /// Compulsory falling edge `s-`.
    pub fn fall(signal: SignalId) -> Self {
        Term {
            signal,
            kind: TermKind::Fall,
        }
    }

    /// Compulsory edge toward `target`.
    pub fn edge(signal: SignalId, target: bool) -> Self {
        if target {
            Term::rise(signal)
        } else {
            Term::fall(signal)
        }
    }

    /// Directed don't-care toward `target`.
    pub fn ddc(signal: SignalId, target: bool) -> Self {
        Term {
            signal,
            kind: if target {
                TermKind::DdcRise
            } else {
                TermKind::DdcFall
            },
        }
    }

    /// Sampled level `<s+>`/`<s->`.
    pub fn level(signal: SignalId, value: bool) -> Self {
        Term {
            signal,
            kind: if value {
                TermKind::LevelHigh
            } else {
                TermKind::LevelLow
            },
        }
    }
}

/// A state transition: fires when `input` completes, toggling `output`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transition {
    /// Source state.
    pub from: StateId,
    /// Destination state.
    pub to: StateId,
    /// The input burst.
    pub input: Vec<Term>,
    /// Output toggles (each listed signal changes value exactly once).
    pub output: BTreeSet<SignalId>,
}

impl Transition {
    /// The compulsory edges of the input burst.
    pub fn compulsory(&self) -> impl Iterator<Item = &Term> {
        self.input.iter().filter(|t| t.kind.is_compulsory())
    }

    /// The term for `signal`, if present.
    pub fn term(&self, signal: SignalId) -> Option<&Term> {
        self.input.iter().find(|t| t.signal == signal)
    }
}

/// Machine statistics — the quantities compared in the paper's Figure 12.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct XbmStats {
    /// Number of (live) states.
    pub states: usize,
    /// Number of transitions.
    pub transitions: usize,
    /// Number of input signals.
    pub inputs: usize,
    /// Number of output signals.
    pub outputs: usize,
}

impl fmt::Display for XbmStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} transitions, {} in, {} out",
            self.states, self.transitions, self.inputs, self.outputs
        )
    }
}

/// An extended burst-mode machine.
///
/// Build one with [`XbmBuilder`]; edit it with the mutation methods (which
/// the local transforms of the core crate use); check well-formedness with
/// [`crate::validate::validate`].
#[derive(Clone, Debug)]
pub struct XbmMachine {
    name: String,
    signals: Vec<SignalInfo>,
    states: Vec<Option<String>>,
    transitions: Vec<Transition>,
    initial: StateId,
    /// Signals deleted by LT4/LT5; their id slots remain occupied.
    removed_signals: Vec<SignalId>,
}

impl XbmMachine {
    /// The machine's name (e.g. `"ALU1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// All signals (inputs and outputs), indexable by [`SignalId`].
    pub fn signals(&self) -> impl Iterator<Item = (SignalId, &SignalInfo)> {
        self.signals
            .iter()
            .enumerate()
            .map(|(i, s)| (SignalId(i as u32), s))
    }

    /// Looks up a signal.
    pub fn signal(&self, id: SignalId) -> Result<&SignalInfo, XbmError> {
        self.signals
            .get(id.index())
            .ok_or(XbmError::UnknownSignal(id))
    }

    /// Finds a signal by name.
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.signals()
            .find(|(_, s)| s.name == name)
            .map(|(id, _)| id)
    }

    /// Live states as `(id, name)`.
    pub fn states(&self) -> impl Iterator<Item = (StateId, &str)> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|n| (StateId(i as u32), n.as_str())))
    }

    /// Whether a state id is live.
    pub fn has_state(&self, id: StateId) -> bool {
        self.states
            .get(id.index())
            .map(Option::is_some)
            .unwrap_or(false)
    }

    /// All transitions (indices are stable between edits that don't remove
    /// transitions).
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Transitions leaving `state`, as `(index, transition)`.
    pub fn transitions_from(&self, state: StateId) -> impl Iterator<Item = (usize, &Transition)> {
        self.transitions
            .iter()
            .enumerate()
            .filter(move |(_, t)| t.from == state)
    }

    /// Transitions entering `state`, as `(index, transition)`.
    pub fn transitions_into(&self, state: StateId) -> impl Iterator<Item = (usize, &Transition)> {
        self.transitions
            .iter()
            .enumerate()
            .filter(move |(_, t)| t.to == state)
    }

    /// Statistics for the Figure 12 comparison.
    pub fn stats(&self) -> XbmStats {
        XbmStats {
            states: self.states.iter().flatten().count(),
            transitions: self.transitions.len(),
            inputs: self.signals.iter().filter(|s| s.input).count(),
            outputs: self.signals.iter().filter(|s| !s.input).count(),
        }
    }

    // ------------------------------------------------------------------
    // Edit primitives (used by the local transforms)
    // ------------------------------------------------------------------

    /// Adds a fresh state.
    pub fn add_state(&mut self, name: impl Into<String>) -> StateId {
        self.states.push(Some(name.into()));
        StateId((self.states.len() - 1) as u32)
    }

    /// Adds a signal.
    pub fn add_signal(&mut self, info: SignalInfo) -> SignalId {
        self.signals.push(info);
        SignalId((self.signals.len() - 1) as u32)
    }

    /// Adds a transition and returns its index.
    ///
    /// # Errors
    ///
    /// Checks ids and signal directions (inputs in the input burst, outputs
    /// in the output burst).
    pub fn add_transition(
        &mut self,
        from: StateId,
        to: StateId,
        input: Vec<Term>,
        output: impl IntoIterator<Item = SignalId>,
    ) -> Result<usize, XbmError> {
        if !self.has_state(from) {
            return Err(XbmError::UnknownState(from));
        }
        if !self.has_state(to) {
            return Err(XbmError::UnknownState(to));
        }
        for t in &input {
            let s = self.signal(t.signal)?;
            if !s.input {
                return Err(XbmError::Direction {
                    signal: t.signal,
                    expected_input: true,
                });
            }
        }
        let output: BTreeSet<SignalId> = output.into_iter().collect();
        for &o in &output {
            let s = self.signal(o)?;
            if s.input {
                return Err(XbmError::Direction {
                    signal: o,
                    expected_input: false,
                });
            }
        }
        self.transitions.push(Transition {
            from,
            to,
            input,
            output,
        });
        Ok(self.transitions.len() - 1)
    }

    /// Mutable access to one transition (for the local transforms).
    ///
    /// # Errors
    ///
    /// Fails if the index is out of range.
    pub fn transition_mut(&mut self, idx: usize) -> Result<&mut Transition, XbmError> {
        let len = self.transitions.len();
        self.transitions.get_mut(idx).ok_or_else(|| {
            XbmError::Structure(format!("transition index {idx} out of range {len}"))
        })
    }

    /// Moves an output toggle from one transition to another (LT1/LT2).
    ///
    /// # Errors
    ///
    /// Fails if the source transition does not toggle `signal` or the
    /// destination already does.
    pub fn move_output(
        &mut self,
        signal: SignalId,
        from_idx: usize,
        to_idx: usize,
    ) -> Result<(), XbmError> {
        if !self
            .transitions
            .get(from_idx)
            .map(|t| t.output.contains(&signal))
            .unwrap_or(false)
        {
            return Err(XbmError::Structure(format!(
                "transition #{from_idx} does not toggle {signal}"
            )));
        }
        if self
            .transitions
            .get(to_idx)
            .map(|t| t.output.contains(&signal))
            .unwrap_or(true)
        {
            return Err(XbmError::Structure(format!(
                "transition #{to_idx} already toggles {signal} (or is out of range)"
            )));
        }
        self.transitions[from_idx].output.remove(&signal);
        self.transitions[to_idx].output.insert(signal);
        Ok(())
    }

    /// Deletes an input signal everywhere (LT4: remove acknowledgments).
    /// Returns the indices of transitions whose input burst became empty —
    /// candidates for [`Self::contract_empty_transitions`].
    ///
    /// # Errors
    ///
    /// Fails if `signal` is not an input of this machine.
    pub fn remove_input_signal(&mut self, signal: SignalId) -> Result<Vec<usize>, XbmError> {
        if !self.signal(signal)?.input {
            return Err(XbmError::Direction {
                signal,
                expected_input: true,
            });
        }
        let mut emptied = Vec::new();
        for (i, t) in self.transitions.iter_mut().enumerate() {
            let before = t.input.len();
            t.input.retain(|term| term.signal != signal);
            if before > 0
                && t.input.iter().all(|term| !term.kind.is_compulsory())
                && t.input.len() != before
            {
                emptied.push(i);
            }
        }
        // Tombstone the signal by marking it unused; ids stay stable.
        self.signals[signal.index()].name.push_str("(removed)");
        self.signals[signal.index()].kind = SignalKind::Plain;
        self.removed_signals.push(signal);
        Ok(emptied)
    }

    /// Replaces every toggle of `remove` by `keep` (LT5: signal sharing).
    ///
    /// # Errors
    ///
    /// Fails unless both are outputs and they toggle in exactly the same
    /// transitions (the LT5 side condition).
    pub fn share_outputs(&mut self, keep: SignalId, remove: SignalId) -> Result<(), XbmError> {
        if self.signal(keep)?.input {
            return Err(XbmError::Direction {
                signal: keep,
                expected_input: false,
            });
        }
        if self.signal(remove)?.input {
            return Err(XbmError::Direction {
                signal: remove,
                expected_input: false,
            });
        }
        let same_everywhere = self
            .transitions
            .iter()
            .all(|t| t.output.contains(&keep) == t.output.contains(&remove));
        if !same_everywhere {
            return Err(XbmError::Structure(format!(
                "outputs {keep} and {remove} do not appear in identical bursts"
            )));
        }
        for t in &mut self.transitions {
            t.output.remove(&remove);
        }
        self.signals[remove.index()].name.push_str("(shared)");
        self.removed_signals.push(remove);
        Ok(())
    }

    /// Contracts transitions whose input burst lost all compulsory edges
    /// (after LT4): such a transition fires immediately, so its outputs fold
    /// into every transition entering its source state, and the pass-through
    /// state disappears. Returns the number of contractions performed.
    pub fn contract_empty_transitions(&mut self) -> usize {
        let mut contracted = 0;
        while let Some(idx) = self
            .transitions
            .iter()
            .position(|t| t.input.iter().all(|term| !term.kind.is_compulsory()) && t.from != t.to)
        {
            let t = self.transitions[idx].clone();
            // Only contract a pure pass-through: the empty transition must
            // be the sole exit of its source state.
            let sole_exit = self.transitions_from(t.from).count() == 1;
            if !sole_exit {
                // Leave it; firing rules would be ambiguous.
                // Mark by giving it a level placeholder? No — just stop to
                // avoid infinite loops.
                break;
            }
            if t.from == self.initial {
                self.initial = t.to;
            }
            let (from, to) = (t.from, t.to);
            let outputs = t.output.clone();
            let residual_input = t.input.clone();
            self.transitions.remove(idx);
            for tr in &mut self.transitions {
                if tr.to == from {
                    tr.to = to;
                    for o in &outputs {
                        tr.output.insert(*o);
                    }
                    // Residual non-compulsory terms (ddc/levels) migrate too.
                    for term in &residual_input {
                        if tr.term(term.signal).is_none() {
                            tr.input.push(*term);
                        }
                    }
                }
            }
            self.states[from.index()] = None;
            contracted += 1;
        }
        contracted
    }

    /// Removes a transition by index (later indices shift down), then
    /// tombstones any state left with no references.
    ///
    /// # Errors
    ///
    /// Fails if the index is out of range.
    pub fn remove_transition(&mut self, idx: usize) -> Result<Transition, XbmError> {
        if idx >= self.transitions.len() {
            return Err(XbmError::Structure(format!(
                "transition index {idx} out of range"
            )));
        }
        let t = self.transitions.remove(idx);
        self.prune_orphan_states();
        Ok(t)
    }

    /// Tombstones states that no transition references (keeping the
    /// initial state).
    pub fn prune_orphan_states(&mut self) {
        let referenced: std::collections::HashSet<StateId> = self
            .transitions
            .iter()
            .flat_map(|t| [t.from, t.to])
            .chain([self.initial])
            .collect();
        for i in 0..self.states.len() {
            if self.states[i].is_some() && !referenced.contains(&StateId(i as u32)) {
                self.states[i] = None;
            }
        }
    }

    /// Signals removed by LT4/LT5 (still occupying their id slots).
    pub fn removed_signals(&self) -> &[SignalId] {
        &self.removed_signals
    }

    /// Live (non-removed) signals.
    pub fn live_signals(&self) -> impl Iterator<Item = (SignalId, &SignalInfo)> {
        self.signals()
            .filter(|(id, _)| !self.removed_signals.contains(id))
    }
}

/// Builder for [`XbmMachine`].
#[derive(Clone, Debug)]
pub struct XbmBuilder {
    m: XbmMachine,
}

impl XbmBuilder {
    /// Starts a machine with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        XbmBuilder {
            m: XbmMachine {
                name: name.into(),
                signals: Vec::new(),
                states: Vec::new(),
                transitions: Vec::new(),
                initial: StateId(0),
                removed_signals: Vec::new(),
            },
        }
    }

    /// Declares an input signal with its reset value.
    pub fn input(&mut self, name: impl Into<String>, initial: bool) -> SignalId {
        self.m.add_signal(SignalInfo {
            name: name.into(),
            kind: SignalKind::GlobalReq,
            input: true,
            initial,
        })
    }

    /// Declares an input signal with an explicit kind.
    pub fn input_kind(
        &mut self,
        name: impl Into<String>,
        kind: SignalKind,
        initial: bool,
    ) -> SignalId {
        self.m.add_signal(SignalInfo {
            name: name.into(),
            kind,
            input: true,
            initial,
        })
    }

    /// Declares an output signal with its reset value.
    pub fn output(&mut self, name: impl Into<String>, initial: bool) -> SignalId {
        self.m.add_signal(SignalInfo {
            name: name.into(),
            kind: SignalKind::GlobalDone,
            input: false,
            initial,
        })
    }

    /// Declares an output signal with an explicit kind.
    pub fn output_kind(
        &mut self,
        name: impl Into<String>,
        kind: SignalKind,
        initial: bool,
    ) -> SignalId {
        self.m.add_signal(SignalInfo {
            name: name.into(),
            kind,
            input: false,
            initial,
        })
    }

    /// Adds a state.
    pub fn state(&mut self, name: impl Into<String>) -> StateId {
        self.m.add_state(name)
    }

    /// Adds a transition.
    ///
    /// # Errors
    ///
    /// Propagates [`XbmMachine::add_transition`] checks.
    pub fn transition(
        &mut self,
        from: StateId,
        to: StateId,
        input: impl IntoIterator<Item = Term>,
        output: impl IntoIterator<Item = SignalId>,
    ) -> Result<usize, XbmError> {
        self.m
            .add_transition(from, to, input.into_iter().collect(), output)
    }

    /// Re-targets a transition (used by machine-construction algorithms
    /// that close cycles after the fact).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn redirect_transition(&mut self, idx: usize, to: StateId) {
        self.m.transitions[idx].to = to;
    }

    /// Replaces a transition wholesale.
    ///
    /// # Errors
    ///
    /// Same checks as [`XbmMachine::add_transition`].
    pub fn replace_transition(
        &mut self,
        idx: usize,
        from: StateId,
        to: StateId,
        input: Vec<Term>,
        output: Vec<SignalId>,
    ) -> Result<(), XbmError> {
        let new_idx = self.m.add_transition(from, to, input, output)?;
        let t = self.m.transitions.remove(new_idx);
        self.m.transitions[idx] = t;
        Ok(())
    }

    /// Appends output toggles to a transition.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn extend_outputs(&mut self, idx: usize, outputs: impl IntoIterator<Item = SignalId>) {
        self.m.transitions[idx].output.extend(outputs);
    }

    /// The `(from, input, output)` parts of a transition, cloned.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn transition_parts(&self, idx: usize) -> (StateId, Vec<Term>, Vec<SignalId>) {
        let t = &self.m.transitions[idx];
        (t.from, t.input.clone(), t.output.iter().copied().collect())
    }

    /// Removes a transition by index without state pruning (builder-time
    /// cleanup helper; later indices shift down).
    ///
    /// # Errors
    ///
    /// Fails if the index is out of range.
    pub fn remove_transition(&mut self, idx: usize) -> Result<Transition, XbmError> {
        self.m.remove_transition(idx)
    }

    /// Indices of the transitions entering a state.
    pub fn transitions_into_idx(&self, s: StateId) -> Vec<usize> {
        self.m.transitions_into(s).map(|(i, _)| i).collect()
    }

    /// Drops every transition not reachable from `initial` and prunes the
    /// states that become orphaned (sweeps leftovers of cycle-closing
    /// surgery).
    pub fn remove_unreachable(&mut self, initial: StateId) {
        let mut reach = std::collections::HashSet::new();
        reach.insert(initial);
        loop {
            let before = reach.len();
            for t in &self.m.transitions {
                if reach.contains(&t.from) {
                    reach.insert(t.to);
                }
            }
            if reach.len() == before {
                break;
            }
        }
        self.m.transitions.retain(|t| reach.contains(&t.from));
        self.m.prune_orphan_states();
    }

    /// Removes a state that no transition references (tombstones it).
    /// States still referenced are left untouched.
    pub fn remove_state(&mut self, s: StateId) {
        let referenced = self.m.transitions.iter().any(|t| t.from == s || t.to == s);
        if !referenced {
            self.m.states[s.index()] = None;
        }
    }

    /// Finishes the machine with the given initial state.
    ///
    /// # Errors
    ///
    /// Fails if `initial` is unknown.
    pub fn finish(mut self, initial: StateId) -> Result<XbmMachine, XbmError> {
        if !self.m.has_state(initial) {
            return Err(XbmError::UnknownState(initial));
        }
        self.m.initial = initial;
        // Drop states that ended up unreachable/unreferenced during
        // construction (redirected-away targets).
        let referenced: std::collections::HashSet<StateId> = self
            .m
            .transitions
            .iter()
            .flat_map(|t| [t.from, t.to])
            .chain([initial])
            .collect();
        for i in 0..self.m.states.len() {
            if self.m.states[i].is_some() && !referenced.contains(&StateId(i as u32)) {
                self.m.states[i] = None;
            }
        }
        Ok(self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> (XbmMachine, SignalId, SignalId) {
        let mut b = XbmBuilder::new("m");
        let req = b.input("req", false);
        let ack = b.output("ack", false);
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        b.transition(s0, s1, [Term::rise(req)], [ack]).unwrap();
        b.transition(s1, s0, [Term::fall(req)], [ack]).unwrap();
        (b.finish(s0).unwrap(), req, ack)
    }

    #[test]
    fn build_and_stats() {
        let (m, _, _) = simple();
        let st = m.stats();
        assert_eq!(st.states, 2);
        assert_eq!(st.transitions, 2);
        assert_eq!(st.inputs, 1);
        assert_eq!(st.outputs, 1);
        assert_eq!(st.to_string(), "2 states, 2 transitions, 1 in, 1 out");
    }

    #[test]
    fn direction_checks_reject_misuse() {
        let mut b = XbmBuilder::new("m");
        let req = b.input("req", false);
        let ack = b.output("ack", false);
        let s0 = b.state("s0");
        assert!(matches!(
            b.transition(s0, s0, [Term::rise(ack)], []),
            Err(XbmError::Direction { .. })
        ));
        assert!(matches!(
            b.transition(s0, s0, [Term::rise(req)], [req]),
            Err(XbmError::Direction { .. })
        ));
    }

    #[test]
    fn move_output_between_transitions() {
        let (mut m, _, ack) = simple();
        m.move_output(ack, 1, 0).unwrap_err(); // #0 already toggles ack
                                               // Add a third transition without ack, then move it there.
        let s0 = m.initial();
        let s1 = m.transitions()[0].to;
        let extra_in = m.add_signal(SignalInfo {
            name: "go".into(),
            kind: SignalKind::GlobalReq,
            input: true,
            initial: false,
        });
        let idx = m
            .add_transition(s1, s0, vec![Term::rise(extra_in)], [])
            .unwrap();
        m.move_output(ack, 1, idx).unwrap();
        assert!(!m.transitions()[1].output.contains(&ack));
        assert!(m.transitions()[idx].output.contains(&ack));
    }

    #[test]
    fn remove_input_signal_and_contract() {
        // s0 --a+/x--> s1 --b+/y--> s2 --a-,b-/x,y--> s0; remove b.
        let mut b = XbmBuilder::new("m");
        let a = b.input("a", false);
        let bb = b.input("b", false);
        let x = b.output("x", false);
        let y = b.output("y", false);
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        let s2 = b.state("s2");
        b.transition(s0, s1, [Term::rise(a)], [x]).unwrap();
        b.transition(s1, s2, [Term::rise(bb)], [y]).unwrap();
        b.transition(s2, s0, [Term::fall(a), Term::fall(bb)], [x, y])
            .unwrap();
        let mut m = b.finish(s0).unwrap();

        let emptied = m.remove_input_signal(bb).unwrap();
        assert_eq!(emptied, vec![1]);
        let n = m.contract_empty_transitions();
        assert_eq!(n, 1);
        let st = m.stats();
        assert_eq!(st.states, 2);
        assert_eq!(st.transitions, 2);
        // y's toggle folded into the first transition.
        assert!(m.transitions()[0].output.contains(&y));
        assert_eq!(m.removed_signals(), &[bb]);
        assert_eq!(m.live_signals().count(), 3);
    }

    #[test]
    fn share_outputs_requires_identical_bursts() {
        let mut b = XbmBuilder::new("m");
        let a = b.input("a", false);
        let x = b.output("x", false);
        let y = b.output("y", false);
        let z = b.output("z", false);
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        b.transition(s0, s1, [Term::rise(a)], [x, y]).unwrap();
        b.transition(s1, s0, [Term::fall(a)], [x, y, z]).unwrap();
        let mut m = b.finish(s0).unwrap();
        assert!(m.share_outputs(x, z).is_err());
        m.share_outputs(x, y).unwrap();
        assert!(!m.transitions()[0].output.contains(&y));
        assert_eq!(m.removed_signals(), &[y]);
    }

    #[test]
    fn contract_respects_initial_state() {
        let mut b = XbmBuilder::new("m");
        let a = b.input("a", false);
        let x = b.output("x", false);
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        b.transition(s0, s1, [Term::rise(a)], [x]).unwrap();
        b.transition(s1, s0, [Term::fall(a)], [x]).unwrap();
        let mut m = b.finish(s0).unwrap();
        // Remove `a` entirely: both transitions empty; contraction folds one
        // and then stops (the remaining one is a self-loop after folding).
        m.remove_input_signal(a).unwrap();
        let _ = m.contract_empty_transitions();
        assert!(m.has_state(m.initial()));
    }

    #[test]
    fn term_constructors() {
        let s = SignalId::from_raw(0);
        assert_eq!(Term::edge(s, true), Term::rise(s));
        assert_eq!(Term::edge(s, false), Term::fall(s));
        assert!(Term::ddc(s, true).kind.is_ddc());
        assert!(Term::level(s, false).kind.is_level());
        assert!(!Term::level(s, false).kind.target());
        assert!(Term::rise(s).kind.is_compulsory());
    }
}
