//! State reduction by bisimulation: merge states whose entire future
//! behaviour (input bursts, output toggles, successor classes) coincides.
//!
//! Controller extraction keys its states by *(program position, wire
//! phases)*, which can duplicate behaviourally identical laps of a loop.
//! Classical partition refinement finds and merges those duplicates — the
//! state-minimization duty that the paper delegates to Minimalist's
//! front-end.
//!
//! The reduction is *behaviour-exact* (no don't-care exploitation): the
//! reduced machine is bisimilar to the input, so every trace, simulation,
//! and logic-synthesis result is preserved.

use std::collections::{BTreeSet, HashMap};

use crate::error::XbmError;
use crate::machine::{StateId, Term, XbmMachine};

/// Report of one reduction run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReduceReport {
    /// States before.
    pub states_before: usize,
    /// States after.
    pub states_after: usize,
    /// Transitions before.
    pub transitions_before: usize,
    /// Transitions after.
    pub transitions_after: usize,
}

/// One state's refinement signature: its outgoing transitions as
/// (sorted input burst, output ids, successor class), sorted.
type Signature = Vec<(Vec<Term>, Vec<u32>, usize)>;

/// A rebuilt transition's dedup key: (from, sorted input terms, outputs, to).
type TransitionKey = (StateId, Vec<(u32, u8)>, Vec<u32>, StateId);

/// Minimizes a machine by bisimulation partition refinement. Returns the
/// reduced machine and a report; a machine with no mergeable states comes
/// back unchanged (same counts).
///
/// # Errors
///
/// Propagates machine reconstruction failures; the result is re-validated
/// only structurally (the caller's validation contract is unchanged
/// because the reduction is bisimilar).
pub fn reduce(m: &XbmMachine) -> Result<(XbmMachine, ReduceReport), XbmError> {
    let states: Vec<StateId> = m.states().map(|(id, _)| id).collect();
    let before = m.stats();

    // Start with one class and refine by transition signatures.
    let mut class: HashMap<StateId, usize> = states.iter().map(|&s| (s, 0)).collect();
    loop {
        let mut signatures: HashMap<StateId, Signature> = HashMap::new();
        for &s in &states {
            let mut sig: Signature = m
                .transitions_from(s)
                .map(|(_, t)| {
                    let mut input = t.input.clone();
                    input.sort_by_key(|term| (term.signal, term.kind as u8));
                    let output: Vec<u32> = t.output.iter().map(|o| o.index() as u32).collect();
                    (input, output, class[&t.to])
                })
                .collect();
            sig.sort();
            signatures.insert(s, sig);
        }
        // Assign new classes by (old class, signature).
        let prev_classes = class.values().collect::<BTreeSet<_>>().len();
        let mut next_of: HashMap<(usize, Signature), usize> = HashMap::new();
        let mut new_class: HashMap<StateId, usize> = HashMap::new();
        for &s in &states {
            let key = (class[&s], signatures[&s].clone());
            let n = next_of.len();
            let id = *next_of.entry(key).or_insert(n);
            new_class.insert(s, id);
        }
        let stable = next_of.len() == prev_classes;
        class = new_class;
        if stable {
            break;
        }
    }

    let nclasses = class.values().collect::<BTreeSet<_>>().len();
    if nclasses == states.len() {
        return Ok((
            m.clone(),
            ReduceReport {
                states_before: before.states,
                states_after: before.states,
                transitions_before: before.transitions,
                transitions_after: before.transitions,
            },
        ));
    }

    // Rebuild with one representative state per class.
    let mut rep: HashMap<usize, StateId> = HashMap::new();
    for &s in &states {
        rep.entry(class[&s]).or_insert(s);
    }
    // Keep the initial state as its class representative.
    rep.insert(class[&m.initial()], m.initial());

    let mut b = crate::machine::XbmBuilder::new(m.name());
    // Re-declare signals verbatim (ids preserved).
    let mut sig_map = Vec::new();
    for (_, info) in m.signals() {
        let id = if info.input {
            b.input_kind(info.name.clone(), info.kind, info.initial)
        } else {
            b.output_kind(info.name.clone(), info.kind, info.initial)
        };
        sig_map.push(id);
    }
    let mut state_map: HashMap<StateId, StateId> = HashMap::new();
    // Declare states in class order: the rebuilt machine's state slots
    // (and thus its serialization) must not depend on hash iteration
    // order — `MinimizeCache` keys on the serialized text.
    let mut by_class: Vec<(usize, StateId)> = rep.iter().map(|(&c, &s)| (c, s)).collect();
    by_class.sort_unstable_by_key(|&(c, _)| c);
    for (cls, old) in by_class {
        let new = b.state(format!("c{cls}"));
        state_map.insert(old, new);
    }
    let to_new = |s: StateId,
                  class: &HashMap<StateId, usize>,
                  rep: &HashMap<usize, StateId>,
                  map: &HashMap<StateId, StateId>| { map[&rep[&class[&s]]] };
    let mut seen: BTreeSet<TransitionKey> = BTreeSet::new();
    for t in m.transitions() {
        // Only transitions out of representatives matter (others are
        // duplicates by construction).
        if rep[&class[&t.from]] != t.from {
            continue;
        }
        let from = to_new(t.from, &class, &rep, &state_map);
        let to = to_new(t.to, &class, &rep, &state_map);
        let input: Vec<Term> = t
            .input
            .iter()
            .map(|term| Term {
                signal: sig_map[term.signal.index()],
                kind: term.kind,
            })
            .collect();
        let output: Vec<_> = t.output.iter().map(|o| sig_map[o.index()]).collect();
        let key = (
            from,
            {
                let mut k: Vec<(u32, u8)> = input
                    .iter()
                    .map(|x| (x.signal.index() as u32, x.kind as u8))
                    .collect();
                k.sort_unstable();
                k
            },
            output.iter().map(|o| o.index() as u32).collect(),
            to,
        );
        if !seen.insert(key) {
            continue;
        }
        b.transition(from, to, input, output)?;
    }
    let initial = state_map[&m.initial()];
    let reduced = b.finish(initial)?;
    let after = reduced.stats();
    Ok((
        reduced,
        ReduceReport {
            states_before: before.states,
            states_after: after.states,
            transitions_before: before.transitions,
            transitions_after: after.transitions,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::XbmBuilder;

    #[test]
    fn identical_laps_merge() {
        // Two unrolled laps of the same handshake: 4 states -> 2.
        let mut b = XbmBuilder::new("laps");
        let req = b.input("req", false);
        let ack = b.output("ack", false);
        let s: Vec<_> = (0..4).map(|i| b.state(format!("s{i}"))).collect();
        b.transition(s[0], s[1], [Term::rise(req)], [ack]).unwrap();
        b.transition(s[1], s[2], [Term::fall(req)], [ack]).unwrap();
        b.transition(s[2], s[3], [Term::rise(req)], [ack]).unwrap();
        b.transition(s[3], s[0], [Term::fall(req)], [ack]).unwrap();
        let m = b.finish(s[0]).unwrap();
        let (r, rep) = reduce(&m).unwrap();
        assert_eq!(rep.states_before, 4);
        assert_eq!(rep.states_after, 2);
        assert_eq!(r.stats().transitions, 2);
        crate::validate::validate(&r).unwrap();
    }

    #[test]
    fn distinguishable_states_stay_apart() {
        let mut b = XbmBuilder::new("distinct");
        let req = b.input("req", false);
        let other = b.input("oth", false);
        let ack = b.output("ack", false);
        let s: Vec<_> = (0..4).map(|i| b.state(format!("s{i}"))).collect();
        b.transition(s[0], s[1], [Term::rise(req)], [ack]).unwrap();
        b.transition(s[1], s[2], [Term::rise(other)], []).unwrap();
        b.transition(s[2], s[3], [Term::fall(req)], [ack]).unwrap();
        b.transition(s[3], s[0], [Term::fall(other)], []).unwrap();
        let m = b.finish(s[0]).unwrap();
        let (_, rep) = reduce(&m).unwrap();
        assert_eq!(rep.states_after, rep.states_before);
    }

    #[test]
    fn reduction_preserves_interpreter_behaviour() {
        // Build the 2-lap machine, reduce, and co-simulate both.
        let mut b = XbmBuilder::new("laps");
        let req = b.input("req", false);
        let ack = b.output("ack", false);
        let s: Vec<_> = (0..4).map(|i| b.state(format!("s{i}"))).collect();
        b.transition(s[0], s[1], [Term::rise(req)], [ack]).unwrap();
        b.transition(s[1], s[2], [Term::fall(req)], [ack]).unwrap();
        b.transition(s[2], s[3], [Term::rise(req)], [ack]).unwrap();
        b.transition(s[3], s[0], [Term::fall(req)], [ack]).unwrap();
        let m = b.finish(s[0]).unwrap();
        let (r, _) = reduce(&m).unwrap();
        let req_r = r.signal_by_name("req").unwrap();
        let mut a = crate::interp::Interp::new(&m);
        let mut bb = crate::interp::Interp::new(&r);
        for step in 0..10 {
            let v = step % 2 == 0;
            let oa = a.set_input(req, v).unwrap();
            let ob = bb.set_input(req_r, v).unwrap();
            assert_eq!(
                oa.iter().map(|(s, v)| (s.index(), *v)).collect::<Vec<_>>(),
                ob.iter().map(|(s, v)| (s.index(), *v)).collect::<Vec<_>>(),
                "step {step}"
            );
        }
    }
}
