//! Signals of a burst-mode machine.

use std::fmt;

/// Identifies a signal within one [`crate::XbmMachine`].
///
/// Input and output signals share one id space; whether an id is an input
/// or an output is recorded in its [`SignalInfo`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// Creates an id from a raw index (test fixtures / deserialization).
    pub fn from_raw(raw: u32) -> Self {
        SignalId(raw)
    }

    /// The raw index behind this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Functional classification of a controller signal.
///
/// The distinction matters to the local transforms: LT4 may only delete
/// *local acknowledge* wires, LT1 typically hoists *global done* wires, and
/// the logic synthesizer needs to know which inputs are sampled levels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SignalKind {
    /// Incoming global "ready" wire from another controller (a request).
    GlobalReq,
    /// Outgoing global "ready" wire to other controllers (a done).
    GlobalDone,
    /// Outgoing request of a local 4-phase handshake (to muxes, the unit,
    /// registers…).
    LocalReq,
    /// Incoming acknowledge of a local 4-phase handshake.
    LocalAck,
    /// Sampled level input (condition flag from the datapath).
    Level,
    /// Anything else (plain input/output in hand-written machines).
    Plain,
}

impl SignalKind {
    /// Whether signals of this kind are machine inputs.
    pub fn is_input(self) -> bool {
        matches!(
            self,
            SignalKind::GlobalReq | SignalKind::LocalAck | SignalKind::Level
        )
    }
}

/// Metadata of one signal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignalInfo {
    /// Wire name (e.g. `M1A`, `reg_U_req`).
    pub name: String,
    /// Functional classification.
    pub kind: SignalKind,
    /// Whether this is a machine input (`true`) or output (`false`).
    pub input: bool,
    /// Value at reset.
    pub initial: bool,
}

impl fmt::Display for SignalInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_input_classification() {
        assert!(SignalKind::GlobalReq.is_input());
        assert!(SignalKind::LocalAck.is_input());
        assert!(SignalKind::Level.is_input());
        assert!(!SignalKind::GlobalDone.is_input());
        assert!(!SignalKind::LocalReq.is_input());
    }

    #[test]
    fn id_roundtrip() {
        assert_eq!(SignalId::from_raw(4).index(), 4);
        assert_eq!(SignalId::from_raw(4).to_string(), "s4");
    }
}
