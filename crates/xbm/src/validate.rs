//! Well-formedness checks and value labelling for XBM machines.
//!
//! Burst-mode machines must satisfy (Nowick '93, Yun & Dill '92):
//!
//! * every transition's input burst contains at least one compulsory edge;
//! * the **maximal-set property**: of the transitions leaving a state, no
//!   compulsory burst may be a subset of another, unless a sampled level
//!   distinguishes them;
//! * signal polarities must be consistent: a rising edge can only be
//!   specified where the signal provably is 0 (or in-flight `X` from a
//!   directed don't-care), and outputs must have a definite value anywhere
//!   they toggle;
//! * all states are reachable from the initial state.
//!
//! [`label_values`] computes, per state, the value of every signal on entry
//! (`0`, `1`, or `X`), which the checks — and the logic synthesizer in
//! `adcs-hfmin` — build on.

use std::collections::{HashMap, VecDeque};

use crate::error::XbmError;
use crate::machine::{StateId, TermKind, XbmMachine};
use crate::signal::SignalId;

/// A ternary signal value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Value {
    /// Stable 0.
    Zero,
    /// Stable 1.
    One,
    /// Unknown / possibly in transition (directed don't-care in flight, or
    /// a sampled level).
    X,
}

impl Value {
    /// Converts a concrete boolean.
    pub fn from_bool(b: bool) -> Self {
        if b {
            Value::One
        } else {
            Value::Zero
        }
    }

    /// The concrete value, if stable.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Zero => Some(false),
            Value::One => Some(true),
            Value::X => None,
        }
    }

    fn merge(self, other: Value) -> Value {
        if self == other {
            self
        } else {
            Value::X
        }
    }
}

/// Per-state entry values: `labels[state][signal.index()]`.
pub type StateLabels = HashMap<StateId, Vec<Value>>;

/// Computes the entry value of every signal in every reachable state.
///
/// # Errors
///
/// * [`XbmError::Polarity`] — an edge direction contradicts the provable
///   entering value.
/// * [`XbmError::InconsistentState`] — an *output* enters a state with
///   conflicting values along different paths (outputs must be
///   deterministic per state).
pub fn label_values(m: &XbmMachine) -> Result<StateLabels, XbmError> {
    // Phase 1: propagate to fixpoint without judging — eager checks would
    // fire on stale labels before merges settle to X.
    let mut labels: StateLabels = HashMap::new();
    let init: Vec<Value> = m
        .signals()
        .map(|(_, s)| Value::from_bool(s.initial))
        .collect();
    labels.insert(m.initial(), init);
    let mut work = VecDeque::new();
    work.push_back(m.initial());

    while let Some(state) = work.pop_front() {
        let entry = labels[&state].clone();
        for (_, t) in m.transitions_from(state) {
            let next = post_transition_values(&entry, t);
            match labels.get_mut(&t.to) {
                None => {
                    labels.insert(t.to, next);
                    work.push_back(t.to);
                }
                Some(existing) => {
                    let mut changed = false;
                    for (e, n) in existing.iter_mut().zip(next.iter()) {
                        let merged = e.merge(*n);
                        if merged != *e {
                            *e = merged;
                            changed = true;
                        }
                    }
                    if changed {
                        work.push_back(t.to);
                    }
                }
            }
        }
    }

    // Phase 2: judge against the stable labelling.
    for (&state, entry) in &labels {
        for (_, t) in m.transitions_from(state) {
            let mut cur = entry.clone();
            for term in &t.input {
                let idx = term.signal.index();
                let v = cur[idx];
                match term.kind {
                    TermKind::Rise | TermKind::DdcRise => {
                        if v == Value::One {
                            return Err(XbmError::Polarity {
                                state,
                                signal: term.signal,
                                expected: true,
                            });
                        }
                    }
                    TermKind::Fall | TermKind::DdcFall => {
                        if v == Value::Zero {
                            return Err(XbmError::Polarity {
                                state,
                                signal: term.signal,
                                expected: false,
                            });
                        }
                    }
                    TermKind::LevelHigh | TermKind::LevelLow => {}
                }
                cur[idx] = transition_term_value(term.kind, v);
            }
            for &o in &t.output {
                if entry[o.index()] == Value::X {
                    return Err(XbmError::InconsistentState { state, signal: o });
                }
            }
        }
        // Outputs must be deterministic in every reachable state.
        for (sig, info) in m.signals() {
            if !info.input && entry[sig.index()] == Value::X {
                return Err(XbmError::InconsistentState { state, signal: sig });
            }
        }
    }
    Ok(labels)
}

fn transition_term_value(kind: TermKind, _entry: Value) -> Value {
    match kind {
        TermKind::Rise => Value::One,
        TermKind::Fall => Value::Zero,
        TermKind::DdcRise | TermKind::DdcFall => Value::X,
        // A sampled level pins the branch's world: the signal is assumed
        // stable at its sampled value until the next sampling point (paths
        // re-merge to X at join states).
        TermKind::LevelHigh => Value::One,
        TermKind::LevelLow => Value::Zero,
    }
}

/// Signal values after `t` fires from entry values `entry`.
fn post_transition_values(entry: &[Value], t: &crate::machine::Transition) -> Vec<Value> {
    let mut next = entry.to_vec();
    for term in &t.input {
        next[term.signal.index()] = transition_term_value(term.kind, entry[term.signal.index()]);
    }
    for &o in &t.output {
        next[o.index()] = match next[o.index()] {
            Value::Zero => Value::One,
            Value::One => Value::Zero,
            Value::X => Value::X,
        };
    }
    next
}

/// Rise/fall direction of every output toggle of transition `idx`, given
/// the labelling.
///
/// # Errors
///
/// Fails if the transition index is out of range or its source state is
/// unreachable.
pub fn output_edges(
    m: &XbmMachine,
    labels: &StateLabels,
    idx: usize,
) -> Result<Vec<(SignalId, bool)>, XbmError> {
    let t = m
        .transitions()
        .get(idx)
        .ok_or_else(|| XbmError::Structure(format!("transition index {idx} out of range")))?;
    let entry = labels.get(&t.from).ok_or(XbmError::Unreachable(t.from))?;
    let mut out = Vec::new();
    for &o in &t.output {
        match entry[o.index()] {
            Value::Zero => out.push((o, true)),
            Value::One => out.push((o, false)),
            Value::X => {
                return Err(XbmError::InconsistentState {
                    state: t.from,
                    signal: o,
                })
            }
        }
    }
    Ok(out)
}

/// Runs every well-formedness check.
///
/// # Errors
///
/// The first violated rule, see the module docs.
pub fn validate(m: &XbmMachine) -> Result<(), XbmError> {
    // 1. every transition has a compulsory edge
    for t in m.transitions() {
        if t.input.iter().all(|term| !term.kind.is_compulsory()) {
            return Err(XbmError::EmptyInputBurst {
                from: t.from,
                to: t.to,
            });
        }
    }
    // 2. maximal-set property per state
    for (state, _) in m.states() {
        let outs: Vec<(usize, _)> = m.transitions_from(state).collect();
        for i in 0..outs.len() {
            for j in (i + 1)..outs.len() {
                let (fi, ti) = outs[i];
                let (fj, tj) = outs[j];
                if !distinguishable(ti, tj) {
                    return Err(XbmError::MaximalSet {
                        state,
                        first: fi,
                        second: fj,
                    });
                }
            }
        }
    }
    // 3. polarity / output consistency
    let labels = label_values(m)?;
    // 4. reachability
    for (s, _) in m.states() {
        if !labels.contains_key(&s) {
            return Err(XbmError::Unreachable(s));
        }
    }
    Ok(())
}

/// XBM distinguishability of two transitions out of one state: either a
/// sampled level separates them, or neither compulsory edge set is a
/// subset of the other.
fn distinguishable(a: &crate::machine::Transition, b: &crate::machine::Transition) -> bool {
    // Opposite levels on a common signal distinguish.
    for ta in &a.input {
        if !ta.kind.is_level() {
            continue;
        }
        for tb in &b.input {
            if tb.kind.is_level() && tb.signal == ta.signal && tb.kind != ta.kind {
                return true;
            }
        }
    }
    let ca: Vec<_> = a.compulsory().collect();
    let cb: Vec<_> = b.compulsory().collect();
    let a_sub_b = ca.iter().all(|t| cb.contains(t));
    let b_sub_a = cb.iter().all(|t| ca.contains(t));
    !(a_sub_b || b_sub_a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Term, XbmBuilder};

    fn handshake() -> XbmMachine {
        let mut b = XbmBuilder::new("hs");
        let req = b.input("req", false);
        let ack = b.output("ack", false);
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        b.transition(s0, s1, [Term::rise(req)], [ack]).unwrap();
        b.transition(s1, s0, [Term::fall(req)], [ack]).unwrap();
        b.finish(s0).unwrap()
    }

    #[test]
    fn labels_alternate_through_the_handshake() {
        let m = handshake();
        let labels = label_values(&m).unwrap();
        let s0 = m.initial();
        let s1 = m.transitions()[0].to;
        assert_eq!(labels[&s0], vec![Value::Zero, Value::Zero]);
        assert_eq!(labels[&s1], vec![Value::One, Value::One]);
        assert_eq!(
            output_edges(&m, &labels, 0).unwrap(),
            vec![(SignalId::from_raw(1), true)]
        );
        assert_eq!(
            output_edges(&m, &labels, 1).unwrap(),
            vec![(SignalId::from_raw(1), false)]
        );
    }

    #[test]
    fn validate_accepts_handshake() {
        assert!(validate(&handshake()).is_ok());
    }

    #[test]
    fn polarity_violation_detected() {
        let mut b = XbmBuilder::new("bad");
        let req = b.input("req", false);
        let ack = b.output("ack", false);
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        // req rises twice in a row without falling: impossible.
        b.transition(s0, s1, [Term::rise(req)], [ack]).unwrap();
        b.transition(s1, s0, [Term::rise(req)], [ack]).unwrap();
        let m = b.finish(s0).unwrap();
        assert!(matches!(validate(&m), Err(XbmError::Polarity { .. })));
    }

    #[test]
    fn empty_input_burst_detected() {
        let mut b = XbmBuilder::new("bad");
        let c = b.input("c", false);
        let ack = b.output("ack", false);
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        b.transition(s0, s1, [Term::level(c, true)], [ack]).unwrap();
        b.transition(s1, s0, [Term::fall(c)], [ack]).unwrap();
        let m = b.finish(s0).unwrap();
        assert!(matches!(
            validate(&m),
            Err(XbmError::EmptyInputBurst { .. })
        ));
    }

    #[test]
    fn maximal_set_violation_detected() {
        let mut b = XbmBuilder::new("bad");
        let x = b.input("x", false);
        let y = b.input("y", false);
        let o = b.output("o", false);
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        let s2 = b.state("s2");
        b.transition(s0, s1, [Term::rise(x)], [o]).unwrap();
        b.transition(s0, s2, [Term::rise(x), Term::rise(y)], [])
            .unwrap();
        let m = b.finish(s0).unwrap();
        assert!(matches!(validate(&m), Err(XbmError::MaximalSet { .. })));
    }

    #[test]
    fn levels_make_subset_bursts_legal() {
        // The LOOP-controller pattern: same edge, opposite sampled levels.
        let mut b = XbmBuilder::new("loop");
        let go = b.input("go", false);
        let c = b.input_kind("c", crate::signal::SignalKind::Level, false);
        let enter = b.output("enter", false);
        let exit = b.output("exit", false);
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        let s2 = b.state("s2");
        b.transition(s0, s1, [Term::rise(go), Term::level(c, true)], [enter])
            .unwrap();
        b.transition(s0, s2, [Term::rise(go), Term::level(c, false)], [exit])
            .unwrap();
        b.transition(s1, s0, [Term::fall(go)], [enter]).unwrap();
        b.transition(s2, s0, [Term::fall(go)], [exit]).unwrap();
        let m = b.finish(s0).unwrap();
        validate(&m).unwrap();
    }

    #[test]
    fn unreachable_state_detected() {
        // `finish` prunes *unreferenced* states, so build an island: two
        // states referencing each other but disconnected from the initial
        // state.
        let mut b = XbmBuilder::new("bad");
        let x = b.input("x", false);
        let o = b.output("o", false);
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        let i0 = b.state("island0");
        let i1 = b.state("island1");
        b.transition(s0, s1, [Term::rise(x)], [o]).unwrap();
        b.transition(s1, s0, [Term::fall(x)], [o]).unwrap();
        b.transition(i0, i1, [Term::rise(x)], []).unwrap();
        b.transition(i1, i0, [Term::fall(x)], []).unwrap();
        let m = b.finish(s0).unwrap();
        assert!(matches!(validate(&m), Err(XbmError::Unreachable(_))));
    }

    #[test]
    fn ddc_then_compulsory_edge_is_legal() {
        // s0 --a+, b*+ / x+--> s1 --b+ / x- --> s0' pattern
        let mut b = XbmBuilder::new("ddc");
        let a = b.input("a", false);
        let bb = b.input("b", false);
        let x = b.output("x", false);
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        let s2 = b.state("s2");
        b.transition(s0, s1, [Term::rise(a), Term::ddc(bb, true)], [x])
            .unwrap();
        b.transition(s1, s2, [Term::rise(bb)], [x]).unwrap();
        b.transition(s2, s0, [Term::fall(a), Term::fall(bb)], [])
            .unwrap();
        let m = b.finish(s0).unwrap();
        validate(&m).unwrap();
        let labels = label_values(&m).unwrap();
        assert_eq!(labels[&s1][bb.index()], Value::X);
        assert_eq!(labels[&s2][bb.index()], Value::One);
    }

    #[test]
    fn inconsistent_output_at_join_detected() {
        let mut b = XbmBuilder::new("bad");
        let x = b.input("x", false);
        let y = b.input("y", false);
        let o = b.output("o", false);
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        // Two paths into s1 leave `o` at different values.
        b.transition(s0, s1, [Term::rise(x)], [o]).unwrap();
        b.transition(s0, s1, [Term::rise(y)], []).unwrap();
        let m = b.finish(s0).unwrap();
        assert!(matches!(
            label_values(&m),
            Err(XbmError::InconsistentState { .. })
        ));
    }

    #[test]
    fn value_merge_table() {
        assert_eq!(Value::Zero.merge(Value::Zero), Value::Zero);
        assert_eq!(Value::Zero.merge(Value::One), Value::X);
        assert_eq!(Value::X.merge(Value::One), Value::X);
        assert_eq!(Value::from_bool(true), Value::One);
        assert_eq!(Value::One.as_bool(), Some(true));
        assert_eq!(Value::X.as_bool(), None);
    }
}
