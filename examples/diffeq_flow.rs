//! The paper's case study, end to end: the DIFFEQ benchmark through the
//! full transformation flow, the regenerated Figures 5/12/13, and the
//! final controllers driving a behavioural datapath.
//!
//! ```sh
//! cargo run --release -p adcs --example diffeq_flow
//! ```

use adcs::extract::Extraction;
use adcs::flow::{Flow, FlowOptions};
use adcs::report::{figure12_table, figure13_table, figure5_summary};
use adcs::system::{build_system, SystemDelays};
use adcs_cdfg::benchmarks::{diffeq, diffeq_reference, DiffeqParams};
use adcs_hfmin::{synthesize, SynthOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = DiffeqParams::default();
    let design = diffeq(params)?;

    let flow = Flow::new(design.cdfg.clone(), design.initial.clone());
    let out = flow.run(&FlowOptions::default())?;

    // ---- Figure 5 ------------------------------------------------------
    // The per-arc channel count after GT1-GT4 is the left side of the
    // paper's Figure 5; `out.channels` is the right side.
    print!(
        "{}",
        figure5_summary(10, out.channels.count(), out.channels.multiway_count())
    );
    println!();

    // ---- Figure 12 -----------------------------------------------------
    print!("{}", figure12_table(&out));
    println!();

    // ---- Figure 13 -----------------------------------------------------
    let mut measured = Vec::new();
    for c in &out.controllers {
        let logic = synthesize(&c.machine, SynthOptions::default())?;
        measured.push((
            c.machine.name().to_string(),
            logic.products_single_output(),
            logic.literals_single_output(),
        ));
    }
    print!("{}", figure13_table(&measured));
    println!();

    // ---- End-to-end ----------------------------------------------------
    let ex = Extraction {
        controllers: out.controllers.clone(),
    };
    let mut sys = build_system(
        &out.cdfg,
        &out.channels,
        &ex,
        design.initial.clone(),
        SystemDelays::default(),
    )?;
    let t = sys.run(500_000)?;
    let (x, y, u) = diffeq_reference(params);
    println!(
        "system simulation finished at t={t}: X={:?} Y={:?} U={:?} (reference {x}, {y}, {u})",
        sys.datapath().register("X"),
        sys.datapath().register("Y"),
        sys.datapath().register("U"),
    );
    assert_eq!(sys.datapath().register("X"), Some(x));
    assert_eq!(sys.datapath().register("Y"), Some(y));
    assert_eq!(sys.datapath().register("U"), Some(u));
    println!("controllers drive the datapath to the exact software-reference values.");
    Ok(())
}
