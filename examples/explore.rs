//! Design-space exploration — the transform "scripts" the paper announces
//! as future work, running today: sweep every subset of {GT1..GT5, LT} on
//! DIFFEQ and rank the results.
//!
//! ```sh
//! cargo run --release -p adcs --example explore
//! ```

use adcs::explore::{explore_exhaustive, explore_greedy, Objective};
use adcs::flow::FlowOptions;
use adcs::timing::TimingModel;
use adcs_cdfg::benchmarks::{diffeq, DiffeqParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = diffeq(DiffeqParams::default())?;
    let base = FlowOptions {
        verify_seeds: 2,
        timing: TimingModel::uniform(1, 2)
            .with_class("MUL", 2, 4)
            .with_samples(8),
        ..FlowOptions::default()
    };

    println!("greedy hill climb (channels, then states):");
    let trail = explore_greedy(
        &design.cdfg,
        &design.initial,
        &base,
        Objective::ChannelsThenStates,
    )?;
    for p in &trail {
        println!(
            "  {:28} channels={} states={} transitions={}",
            p.label(),
            p.channels,
            p.states,
            p.transitions
        );
    }
    println!();

    println!("exhaustive sweep over 64 configurations, ten best:");
    let points = explore_exhaustive(
        &design.cdfg,
        &design.initial,
        &base,
        Objective::ChannelsThenStates,
    )?;
    for p in points.iter().take(10) {
        println!(
            "  {:28} channels={} states={} transitions={}",
            p.label(),
            p.channels,
            p.states,
            p.transitions
        );
    }
    println!("  ... {} configurations completed in total", points.len());
    Ok(())
}
