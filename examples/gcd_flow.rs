//! GCD through the flow: a benchmark with an `IF`/`ELSE` inside the loop,
//! exercising the conditional bursts of the extracted controllers.
//!
//! ```sh
//! cargo run -p adcs --example gcd_flow 48 36
//! ```

use adcs::flow::{Flow, FlowOptions};
use adcs_cdfg::benchmarks::{gcd, gcd_reference};
use adcs_sim::exec::{execute, ExecOptions};
use adcs_sim::DelayModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let x: i64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(48);
    let y: i64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(36);

    let design = gcd(x, y)?;
    println!(
        "gcd({x}, {y}): {} nodes, {} constraint arcs, {} inter-unit",
        design.cdfg.node_count(),
        design.cdfg.arc_count(),
        design.cdfg.inter_fu_arcs().len()
    );

    let flow = Flow::new(design.cdfg.clone(), design.initial.clone());
    let out = flow.run(&FlowOptions::default())?;
    println!(
        "channels: {} -> {}",
        out.unoptimized.channels, out.optimized_gt.channels
    );
    for st in [&out.unoptimized, &out.optimized_gt, &out.optimized_gt_lt] {
        println!(
            "  {:22} {} states, {} transitions",
            st.label,
            st.total_states(),
            st.total_transitions()
        );
    }

    // Execute the transformed graph under a handful of delay models.
    let expect = gcd_reference(x, y);
    for seed in 0..4 {
        let delays = DelayModel::uniform(1).with_jitter(seed, 3);
        let r = execute(
            &out.cdfg,
            design.initial.clone(),
            &delays,
            &ExecOptions::default(),
        )?;
        assert_eq!(r.register("x"), Some(expect), "seed {seed}");
    }
    println!("transformed graph computes gcd({x}, {y}) = {expect} under all sampled delays");
    Ok(())
}
