//! Exhaustive interleaving verification of the DIFFEQ controller
//! networks: the checker explores *every* delivery order of in-flight
//! events (equivalently: all wire/datapath delay assignments), proving
//! the system correct under the architecture's standing assumptions and
//! demonstrating where the paper's relative-timing claims are
//! load-bearing.
//!
//! ```sh
//! cargo run --release -p adcs --example model_check
//! ```

use adcs::channel::ChannelMap;
use adcs::extract::{extract, ExpansionStyle, ExtractOptions};
use adcs::flow::{Flow, FlowOptions};
use adcs::mc::{model_check_system, McOptions, McOrder, McVerdict};
use adcs::system::{system_parts, SystemDelays};
use adcs_cdfg::benchmarks::{diffeq, DiffeqParams};

fn describe(label: &str, v: &McVerdict) {
    let s = v.stats();
    match v {
        McVerdict::Verified { outcome, .. } => println!(
            "{label}: VERIFIED over {} states in {} waves (peak frontier {}, {} terminals, \
             max {} in flight); X={:?}",
            s.states,
            s.batches,
            s.peak_frontier,
            s.terminals,
            s.max_pending,
            outcome
                .iter()
                .find(|(r, _)| r.name() == "X")
                .map(|(_, v)| *v)
        ),
        McVerdict::Violation {
            kind,
            detail,
            trace,
            ..
        } => {
            println!(
                "{label}: VIOLATION ({kind:?}) after {} states: {detail}\n  \
                 shallowest counterexample: {}",
                s.states,
                trace.join(" ; ")
            )
        }
        McVerdict::Budget(_) => println!(
            "{label}: budget exhausted at {} states{}",
            s.states,
            if s.truncated { " (mid-wave)" } else { "" }
        ),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One Euler iteration keeps the exhaustive space small.
    let params = DiffeqParams {
        x0: 0,
        y0: 1,
        u0: 2,
        dx: 1,
        a: 1,
    };
    let d = diffeq(params)?;

    // Baseline: the unoptimized 17-channel network, sequential style.
    let channels = ChannelMap::per_arc(&d.cdfg)?;
    let ex = extract(
        &d.cdfg,
        &channels,
        &ExtractOptions {
            style: ExpansionStyle::Sequential,
        },
    )?;
    let parts = system_parts(
        &d.cdfg,
        &channels,
        &ex,
        d.initial.clone(),
        SystemDelays::default(),
    )?;
    let v = model_check_system(&parts, &McOptions::default())?;
    describe("baseline   (setup-time assumption)", &v);

    let v = model_check_system(
        &parts,
        &McOptions {
            synchronous_levels: false,
            ..McOptions::default()
        },
    )?;
    describe("baseline   (levels racing freely) ", &v);

    // Optimized: the full GT+LT flow (5 channels). GT1's cross-iteration
    // overlap explodes the interleaving space (max ~23 events in flight;
    // >6M states for even one iteration), so the full check stops at the
    // budget; the racing-levels run below uses the depth-first hunt order
    // (the violating interleaving is too deep for any breadth-first
    // budget) and finds the GT5 wire interference that the paper's
    // relative-timing regime (§5) exists to exclude.
    let out = Flow::new(d.cdfg.clone(), d.initial.clone()).run(&FlowOptions::default())?;
    let ex = adcs::extract::Extraction {
        controllers: out.controllers.clone(),
    };
    let parts = system_parts(
        &out.cdfg,
        &out.channels,
        &ex,
        d.initial.clone(),
        SystemDelays::default(),
    )?;
    let v = model_check_system(&parts, &McOptions::default())?;
    describe("optimized  (setup-time assumption)", &v);

    let v = model_check_system(
        &parts,
        &McOptions {
            synchronous_levels: false,
            order: McOrder::Depth,
            ..McOptions::default()
        },
    )?;
    describe("optimized  (levels racing freely) ", &v);

    // The zero-iteration run of the optimized network is exhaustively
    // verifiable — and needs no timing assumptions at all.
    let params0 = DiffeqParams {
        x0: 3,
        y0: 1,
        u0: 2,
        dx: 1,
        a: 3,
    };
    let d0 = diffeq(params0)?;
    let out0 = Flow::new(d0.cdfg.clone(), d0.initial.clone()).run(&FlowOptions::default())?;
    let ex0 = adcs::extract::Extraction {
        controllers: out0.controllers.clone(),
    };
    let parts0 = system_parts(
        &out0.cdfg,
        &out0.channels,
        &ex0,
        d0.initial.clone(),
        SystemDelays::default(),
    )?;
    let v = model_check_system(
        &parts0,
        &McOptions {
            synchronous_levels: false,
            ..McOptions::default()
        },
    )?;
    describe("optimized 0-iter (no assumptions) ", &v);

    Ok(())
}
