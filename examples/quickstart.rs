//! Quickstart: build a tiny CDFG, run the full synthesis flow, and print
//! what came out.
//!
//! ```sh
//! cargo run -p adcs --example quickstart
//! ```

use adcs::flow::{Flow, FlowOptions};
use adcs_cdfg::benchmarks::{reg_file, RegFile};
use adcs_cdfg::builder::CdfgBuilder;

fn initial_registers() -> RegFile {
    reg_file([
        ("x", 4),
        ("acc", 0),
        ("one", 1),
        ("zero", 0),
        ("c", 1),
        ("p", 0),
    ])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-unit design: a multiplier feeding an accumulator loop.
    //   while (c) { p := x * x; acc := acc + p; x := x - one; c := x != zero }
    let mut b = CdfgBuilder::new();
    let mul = b.add_fu("MUL");
    let alu = b.add_fu("ALU");
    b.stmt(alu, "c := x != zero")?;
    b.begin_loop(alu, "c");
    b.stmt(mul, "p := x * x")?;
    b.stmt(alu, "acc := acc + p")?;
    b.stmt(alu, "x := x - one")?;
    b.stmt(alu, "c := x != zero")?;
    b.end_loop(alu)?;
    let cdfg = b.finish()?;

    // Run: global transforms -> controller extraction -> local transforms.
    let flow = Flow::new(cdfg, initial_registers());
    let out = flow.run(&FlowOptions::default())?;

    println!(
        "synthesized {} controllers over {} channels:",
        out.controllers.len(),
        out.channels.count()
    );
    for c in &out.controllers {
        println!("  {:4} {}", c.machine.name(), c.machine.stats());
    }
    println!();
    println!("stage progression:");
    for st in [&out.unoptimized, &out.optimized_gt, &out.optimized_gt_lt] {
        println!(
            "  {:22} {} channels, {} states, {} transitions",
            st.label,
            st.channels,
            st.total_states(),
            st.total_transitions()
        );
    }

    // The flow verified the transforms by randomized simulation already;
    // run once more to show the value: acc = 4^2 + 3^2 + 2^2 + 1^2 = 30.
    let r = adcs_sim::exec::execute(
        &out.cdfg,
        initial_registers(),
        &adcs_sim::DelayModel::uniform(1),
        &adcs_sim::exec::ExecOptions::default(),
    )?;
    println!();
    println!("transformed graph computes acc = {:?}", r.register("acc"));
    Ok(())
}
