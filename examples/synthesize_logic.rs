//! Gate-level back-end walkthrough: take one controller from the DIFFEQ
//! flow all the way to verified hazard-free two-level logic, in both the
//! single-output (3D-style) and shared-AND-plane (Minimalist-style)
//! counting modes of the paper's Figure 13, then co-simulate the gates
//! against the burst-mode machine.
//!
//! ```sh
//! cargo run --release -p adcs --example synthesize_logic
//! ```

use adcs::flow::{Flow, FlowOptions};
use adcs_cdfg::benchmarks::{diffeq, DiffeqParams};
use adcs_hfmin::gatesim::cosimulate;
use adcs_hfmin::{synthesize, SynthOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let d = diffeq(DiffeqParams::default())?;
    let out = Flow::new(d.cdfg, d.initial).run(&FlowOptions::default())?;

    println!("controller  mode           products  literals");
    for c in &out.controllers {
        let single = synthesize(&c.machine, SynthOptions::default())?;
        let shared = synthesize(
            &c.machine,
            SynthOptions {
                share_products: true,
                ..SynthOptions::default()
            },
        )?;
        println!(
            "{:10}  single-output  {:8}  {:8}",
            c.machine.name(),
            single.products_single_output(),
            single.literals_single_output()
        );
        println!(
            "{:10}  shared-plane   {:8}  {:8}",
            "",
            shared.products_shared(),
            shared.literals_shared()
        );

        // The covers are not just counted — they are circuits. Drive both
        // implementations lock-step against the machine's own interpreter.
        let edges = cosimulate(&c.machine, &single, 256)?;
        let edges_shared = cosimulate(&c.machine, &shared, 256)?;
        println!(
            "{:10}  co-simulated {edges} single / {edges_shared} shared output edges\n",
            ""
        );
    }

    let total_single: usize = out
        .controllers
        .iter()
        .map(|c| {
            synthesize(&c.machine, SynthOptions::default())
                .map(|l| l.products_single_output())
                .unwrap_or(0)
        })
        .sum();
    println!("total single-output products: {total_single}");
    Ok(())
}
