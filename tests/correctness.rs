//! Cross-crate correctness: every benchmark, at every synthesis stage,
//! must compute the same values as its pure-software reference model.

use adcs::extract::Extraction;
use adcs::flow::{Flow, FlowOptions};
use adcs::system::{build_system, SystemDelays};
use adcs_cdfg::benchmarks::{
    diffeq, diffeq_reference, fir, fir_reference, gcd, gcd_reference, DiffeqParams,
};
use adcs_sim::exec::{execute, ExecOptions};
use adcs_sim::DelayModel;

#[test]
fn diffeq_transformed_graph_is_value_equivalent_under_many_delays() {
    for params in [
        DiffeqParams::default(),
        DiffeqParams {
            x0: 0,
            y0: 3,
            u0: -1,
            dx: 1,
            a: 9,
        },
        DiffeqParams {
            x0: -3,
            y0: 1,
            u0: 2,
            dx: 2,
            a: 7,
        },
        DiffeqParams {
            x0: 5,
            y0: 1,
            u0: 1,
            dx: 1,
            a: 5,
        }, // zero iterations
    ] {
        let d = diffeq(params).unwrap();
        let out = Flow::new(d.cdfg.clone(), d.initial.clone())
            .run(&FlowOptions::default())
            .unwrap();
        let (x, y, u) = diffeq_reference(params);
        for seed in 0..10 {
            let delays = DelayModel::uniform(1)
                .with_fu(d.mul1, 3)
                .with_fu(d.mul2, 2)
                .with_jitter(seed, 3);
            let r = execute(
                &out.cdfg,
                d.initial.clone(),
                &delays,
                &ExecOptions::default(),
            )
            .unwrap();
            assert_eq!(
                (r.register("X"), r.register("Y"), r.register("U")),
                (Some(x), Some(y), Some(u)),
                "{params:?} seed {seed}"
            );
        }
    }
}

#[test]
fn gcd_transformed_graph_is_value_equivalent() {
    for (x, y) in [(48, 36), (17, 5), (9, 9), (1, 100)] {
        let d = gcd(x, y).unwrap();
        let out = Flow::new(d.cdfg.clone(), d.initial.clone())
            .run(&FlowOptions::default())
            .unwrap();
        let expect = gcd_reference(x, y);
        for seed in 0..6 {
            let delays = DelayModel::uniform(1).with_jitter(seed, 4);
            let r = execute(
                &out.cdfg,
                d.initial.clone(),
                &delays,
                &ExecOptions::default(),
            )
            .unwrap();
            assert_eq!(r.register("x"), Some(expect), "gcd({x},{y}) seed {seed}");
        }
    }
}

#[test]
fn fir_transformed_graph_is_value_equivalent() {
    let xs = [5, -3, 2, 8];
    let cs = [1, 4, -2, 3];
    let d = fir(xs, cs, 11).unwrap();
    let out = Flow::new(d.cdfg.clone(), d.initial.clone())
        .run(&FlowOptions::default())
        .unwrap();
    let (y, line) = fir_reference(xs, cs, 11);
    for seed in 0..6 {
        let delays = DelayModel::uniform(2).with_jitter(seed, 3);
        let r = execute(
            &out.cdfg,
            d.initial.clone(),
            &delays,
            &ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(r.register("y"), Some(y), "seed {seed}");
        assert_eq!(r.register("x0"), Some(line[0]), "seed {seed}");
        assert_eq!(r.register("x3"), Some(line[3]), "seed {seed}");
    }
}

#[test]
fn diffeq_controllers_drive_the_datapath_to_reference_values() {
    let params = DiffeqParams {
        x0: 0,
        y0: 2,
        u0: 1,
        dx: 1,
        a: 6,
    };
    let d = diffeq(params).unwrap();
    let out = Flow::new(d.cdfg.clone(), d.initial.clone())
        .run(&FlowOptions::default())
        .unwrap();
    let ex = Extraction {
        controllers: out.controllers.clone(),
    };
    let mut sys = build_system(
        &out.cdfg,
        &out.channels,
        &ex,
        d.initial.clone(),
        SystemDelays::default(),
    )
    .unwrap();
    sys.run(500_000).unwrap();
    let (x, y, u) = diffeq_reference(params);
    assert_eq!(sys.datapath().register("X"), Some(x));
    assert_eq!(sys.datapath().register("Y"), Some(y));
    assert_eq!(sys.datapath().register("U"), Some(u));
}

#[test]
fn wire_safety_holds_for_the_final_channel_structure() {
    let d = diffeq(DiffeqParams::default()).unwrap();
    let out = Flow::new(d.cdfg.clone(), d.initial.clone())
        .run(&FlowOptions::default())
        .unwrap();
    let groups = out.channels.safety_groups(&out.cdfg);
    for seed in 0..20 {
        let delays = DelayModel::uniform(1)
            .with_fu(d.mul1, 4)
            .with_fu(d.mul2, 3)
            .with_jitter(seed, 2);
        let opts = ExecOptions {
            channel_groups: groups.clone(),
            ..ExecOptions::default()
        };
        let r = execute(&out.cdfg, d.initial.clone(), &delays, &opts).unwrap();
        assert!(r.violations.is_empty(), "seed {seed}: {:?}", r.violations);
    }
}

#[test]
fn biquad_cascade_is_value_equivalent_through_the_flow() {
    use adcs_cdfg::benchmarks::{biquad_cascade, biquad_reference};
    for (sections, muls, alus) in [(1, 1, 1), (2, 2, 2)] {
        let d = biquad_cascade(sections, 4, muls, alus).unwrap();
        // Raw graph first.
        let r = execute(
            &d.cdfg,
            d.initial.clone(),
            &DelayModel::uniform(1),
            &ExecOptions::default(),
        )
        .unwrap();
        let expect = biquad_reference(sections, 4);
        assert_eq!(r.register("acc"), Some(expect), "raw {sections} sections");
        // Then the transformed graph under jitter.
        let out = Flow::new(d.cdfg.clone(), d.initial.clone())
            .run(&FlowOptions::default())
            .unwrap();
        for seed in 0..4 {
            let delays = DelayModel::uniform(1).with_jitter(seed, 3);
            let r = execute(
                &out.cdfg,
                d.initial.clone(),
                &delays,
                &ExecOptions::default(),
            )
            .unwrap();
            assert_eq!(
                r.register("acc"),
                Some(expect),
                "{sections} sections seed {seed}"
            );
        }
        assert!(out.optimized_gt.channels < out.unoptimized.channels);
    }
}

#[test]
fn random_straight_line_designs_flow_end_to_end() {
    use adcs_cdfg::benchmarks::random_straight_line;
    for seed in 0..6 {
        let d = random_straight_line(seed, 10 + seed as usize, 2 + (seed % 2) as usize).unwrap();
        let out = Flow::new(d.cdfg.clone(), d.initial.clone())
            .run(&FlowOptions::default())
            .unwrap();
        let r = execute(
            &out.cdfg,
            d.initial.clone(),
            &DelayModel::uniform(1).with_jitter(seed, 2),
            &ExecOptions::default(),
        )
        .unwrap();
        for (reg, v) in &d.expected {
            assert_eq!(r.registers.get(reg), Some(v), "seed {seed} {reg}");
        }
    }
}

#[test]
fn biquad_controllers_drive_the_datapath_under_structural_gt5() {
    use adcs::gt::Gt5Options;
    use adcs_cdfg::benchmarks::{biquad_cascade, biquad_reference};
    let opts = FlowOptions {
        gt5: Gt5Options {
            structural_consumption: true,
            ..Gt5Options::default()
        },
        ..FlowOptions::default()
    };
    for (sections, muls, alus) in [(1usize, 1, 1), (2, 2, 2), (3, 2, 2)] {
        let d = biquad_cascade(sections, 4, muls, alus).unwrap();
        let out = Flow::new(d.cdfg.clone(), d.initial.clone())
            .run(&opts)
            .unwrap();
        assert!(
            out.channels.count() * 2 < out.unoptimized.channels,
            "{sections} sections: {} -> {}",
            out.unoptimized.channels,
            out.channels.count()
        );
        let ex = Extraction {
            controllers: out.controllers.clone(),
        };
        let mut sys = build_system(
            &out.cdfg,
            &out.channels,
            &ex,
            d.initial.clone(),
            SystemDelays::default(),
        )
        .unwrap();
        sys.run(2_000_000).unwrap();
        assert_eq!(
            sys.datapath().register("acc"),
            Some(biquad_reference(sections, 4)),
            "{sections} sections"
        );
    }
}
