//! The parallel explorer must be a pure speedup: for any thread count,
//! `explore_exhaustive` returns the *identical* ranked list — same
//! configurations, same order, same scores — because candidates are
//! collected in mask order and ranked by the total order
//! `(score, bitmask)`.

use adcs::explore::{
    explore_exhaustive_with, explore_greedy_with, ExploreOptions, ExplorePoint, Objective,
};
use adcs::flow::FlowOptions;
use adcs::timing::TimingModel;
use adcs_cdfg::benchmarks::{fir, gcd, RegFile};
use adcs_cdfg::Cdfg;

fn fast_base() -> FlowOptions {
    FlowOptions {
        verify_seeds: 2,
        timing: TimingModel::uniform(1, 2)
            .with_class("MUL", 2, 4)
            .with_samples(8),
        ..FlowOptions::default()
    }
}

fn fingerprint(points: &[ExplorePoint]) -> Vec<(u32, u64, usize, usize, usize)> {
    points
        .iter()
        .map(|p| (p.bitmask(), p.score, p.channels, p.states, p.transitions))
        .collect()
}

fn assert_thread_count_invariant(name: &str, cdfg: &Cdfg, initial: &RegFile) {
    let base = fast_base();
    let baseline = explore_exhaustive_with(
        cdfg,
        initial,
        &base,
        Objective::ChannelsThenStates,
        ExploreOptions::sequential(),
    )
    .expect("sequential exploration");
    assert!(!baseline.is_empty(), "{name}: no configuration completed");
    for threads in [2, 4, 8] {
        let parallel = explore_exhaustive_with(
            cdfg,
            initial,
            &base,
            Objective::ChannelsThenStates,
            ExploreOptions {
                threads: Some(threads),
            },
        )
        .expect("parallel exploration");
        assert_eq!(
            fingerprint(&baseline),
            fingerprint(&parallel),
            "{name}: ranked list changed between 1 and {threads} threads"
        );
    }
    // `None` (all available cores) must agree too.
    let auto = explore_exhaustive_with(
        cdfg,
        initial,
        &base,
        Objective::ChannelsThenStates,
        ExploreOptions::default(),
    )
    .expect("auto-parallel exploration");
    assert_eq!(fingerprint(&baseline), fingerprint(&auto), "{name}: auto");
}

#[test]
fn gcd_ranked_list_is_thread_count_invariant() {
    let d = gcd(21, 6).unwrap();
    assert_thread_count_invariant("gcd", &d.cdfg, &d.initial);
}

#[test]
fn fir_ranked_list_is_thread_count_invariant() {
    let d = fir([1, 2, 3, 4], [5, 6, 7, 8], 4).unwrap();
    assert_thread_count_invariant("fir", &d.cdfg, &d.initial);
}

/// The `MinimizeCache` must be score-transparent: a sweep with the cache
/// on ranks byte-identically to one with it off (hit counters are the only
/// legitimate difference), and a logic-objective sweep actually hits —
/// different transform subsets extract some identical controllers.
/// Runs on the small Figure-8 design so all 128 candidate flows synthesize
/// in test-profile time.
#[test]
fn logic_objective_minimize_cache_is_transparent_and_hits() {
    let text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../designs/figure8.adcs"),
    )
    .unwrap();
    let p = adcs_cdfg::parse::parse_program(&text).unwrap();
    let d = (p.cdfg, p.initial);
    let base = FlowOptions {
        verify_seeds: 1,
        timing: TimingModel::uniform(1, 2)
            .with_class("MUL", 2, 4)
            .with_samples(4),
        ..FlowOptions::default()
    };
    let cached = explore_exhaustive_with(
        &d.0,
        &d.1,
        &base,
        Objective::LogicLiterals,
        ExploreOptions::sequential(),
    )
    .unwrap();
    let uncached = explore_exhaustive_with(
        &d.0,
        &d.1,
        &FlowOptions {
            minimize_cache: false,
            ..base.clone()
        },
        Objective::LogicLiterals,
        ExploreOptions::sequential(),
    )
    .unwrap();
    let render = |points: &[ExplorePoint]| -> String {
        points
            .iter()
            .map(|p| {
                format!(
                    "{:?} score={} ch={} st={} tr={} p={} l={}",
                    p.config, p.score, p.channels, p.states, p.transitions, p.products, p.literals
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        render(&cached),
        render(&uncached),
        "cache changed the ranking"
    );
    let hits: u64 = cached.iter().map(|p| p.hfmin_cache_hits).sum();
    assert!(hits > 0, "no candidate reused a cached minimization");
    assert!(uncached.iter().all(|p| p.hfmin_cache_hits == 0));
    assert!(uncached.iter().all(|p| p.hfmin_cache_misses > 0));
}

#[test]
fn greedy_trail_is_thread_count_invariant() {
    let d = gcd(21, 6).unwrap();
    let base = fast_base();
    let seq = explore_greedy_with(
        &d.cdfg,
        &d.initial,
        &base,
        Objective::ChannelsThenStates,
        ExploreOptions::sequential(),
    )
    .unwrap();
    let par = explore_greedy_with(
        &d.cdfg,
        &d.initial,
        &base,
        Objective::ChannelsThenStates,
        ExploreOptions { threads: Some(4) },
    )
    .unwrap();
    assert_eq!(fingerprint(&seq), fingerprint(&par));
}
