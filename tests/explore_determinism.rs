//! The parallel explorer must be a pure speedup: for any thread count,
//! `explore_exhaustive` returns the *identical* ranked list — same
//! configurations, same order, same scores — because candidates are
//! collected in mask order and ranked by the total order
//! `(score, bitmask)`.

use adcs::explore::{
    explore_exhaustive_with, explore_greedy_with, ExploreOptions, ExplorePoint, Objective,
};
use adcs::flow::FlowOptions;
use adcs::timing::TimingModel;
use adcs_cdfg::benchmarks::{fir, gcd, RegFile};
use adcs_cdfg::Cdfg;

fn fast_base() -> FlowOptions {
    FlowOptions {
        verify_seeds: 2,
        timing: TimingModel::uniform(1, 2)
            .with_class("MUL", 2, 4)
            .with_samples(8),
        ..FlowOptions::default()
    }
}

fn fingerprint(points: &[ExplorePoint]) -> Vec<(u32, u64, usize, usize, usize)> {
    points
        .iter()
        .map(|p| (p.bitmask(), p.score, p.channels, p.states, p.transitions))
        .collect()
}

fn assert_thread_count_invariant(name: &str, cdfg: &Cdfg, initial: &RegFile) {
    let base = fast_base();
    let baseline = explore_exhaustive_with(
        cdfg,
        initial,
        &base,
        Objective::ChannelsThenStates,
        ExploreOptions::sequential(),
    )
    .expect("sequential exploration");
    assert!(!baseline.is_empty(), "{name}: no configuration completed");
    for threads in [2, 4, 8] {
        let parallel = explore_exhaustive_with(
            cdfg,
            initial,
            &base,
            Objective::ChannelsThenStates,
            ExploreOptions {
                threads: Some(threads),
            },
        )
        .expect("parallel exploration");
        assert_eq!(
            fingerprint(&baseline),
            fingerprint(&parallel),
            "{name}: ranked list changed between 1 and {threads} threads"
        );
    }
    // `None` (all available cores) must agree too.
    let auto = explore_exhaustive_with(
        cdfg,
        initial,
        &base,
        Objective::ChannelsThenStates,
        ExploreOptions::default(),
    )
    .expect("auto-parallel exploration");
    assert_eq!(fingerprint(&baseline), fingerprint(&auto), "{name}: auto");
}

#[test]
fn gcd_ranked_list_is_thread_count_invariant() {
    let d = gcd(21, 6).unwrap();
    assert_thread_count_invariant("gcd", &d.cdfg, &d.initial);
}

#[test]
fn fir_ranked_list_is_thread_count_invariant() {
    let d = fir([1, 2, 3, 4], [5, 6, 7, 8], 4).unwrap();
    assert_thread_count_invariant("fir", &d.cdfg, &d.initial);
}

#[test]
fn greedy_trail_is_thread_count_invariant() {
    let d = gcd(21, 6).unwrap();
    let base = fast_base();
    let seq = explore_greedy_with(
        &d.cdfg,
        &d.initial,
        &base,
        Objective::ChannelsThenStates,
        ExploreOptions::sequential(),
    )
    .unwrap();
    let par = explore_greedy_with(
        &d.cdfg,
        &d.initial,
        &base,
        Objective::ChannelsThenStates,
        ExploreOptions { threads: Some(4) },
    )
    .unwrap();
    assert_eq!(fingerprint(&seq), fingerprint(&par));
}
