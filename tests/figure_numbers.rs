//! Regeneration of the paper's figures, with exact assertions where the
//! reproduction matches the published numbers and shape assertions where
//! it can only match the trend (see EXPERIMENTS.md for the methodology
//! deltas).

use adcs::flow::{Flow, FlowOptions};
use adcs::yun::{figure_13_totals, FIGURE_12};
use adcs_cdfg::benchmarks::{diffeq, DiffeqParams};
use adcs_hfmin::{synthesize, SynthOptions};

fn run_flow() -> adcs::flow::FlowOutcome {
    let d = diffeq(DiffeqParams::default()).unwrap();
    Flow::new(d.cdfg.clone(), d.initial.clone())
        .run(&FlowOptions::default())
        .unwrap()
}

#[test]
fn figure12_channel_column_matches_exactly() {
    let out = run_flow();
    assert_eq!(out.unoptimized.channels, FIGURE_12[0].channels); // 17
    assert_eq!(out.optimized_gt.channels, FIGURE_12[1].channels); // 5
    assert_eq!(out.optimized_gt_lt.channels, FIGURE_12[2].channels); // 5
}

#[test]
fn figure5_channel_elimination_matches_exactly() {
    // 10 channels before GT5 (Figure 5 left), 5 after with two multi-way
    // (Figure 5 right).
    use adcs::channel::ChannelMap;
    use adcs::gt::*;
    use adcs::timing::TimingModel;
    let d = diffeq(DiffeqParams::default()).unwrap();
    let mut g = d.cdfg.clone();
    gt1_loop_parallelism(&mut g).unwrap();
    gt2_remove_dominated(&mut g).unwrap();
    let model = TimingModel::uniform(1, 2)
        .with_class("MUL", 2, 4)
        .with_samples(16);
    gt3_relative_timing(&mut g, &d.initial, &model).unwrap();
    gt4_merge_assignments(&mut g).unwrap();
    let mut channels = ChannelMap::per_arc(&g).unwrap();
    assert_eq!(channels.count(), 10, "Figure 5 left");
    gt5_channel_elimination(&mut g, &mut channels, Gt5Options::default()).unwrap();
    assert_eq!(channels.count(), 5, "Figure 5 right");
    assert_eq!(channels.multiway_count(), 2, "Figure 5 multi-way channels");
}

#[test]
fn figure12_state_counts_follow_the_papers_shape() {
    // Absolute counts differ (our strict phase consistency unrolls loop
    // controllers about twofold — EXPERIMENTS.md), but every qualitative
    // relation of Figure 12 must hold:
    let out = run_flow();
    let get = |st: &adcs::flow::StageStats, name: &str| {
        st.machines
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.states)
            .unwrap()
    };
    for name in ["ALU1", "ALU2", "MUL1", "MUL2"] {
        let u = get(&out.unoptimized, name);
        let g = get(&out.optimized_gt, name);
        let l = get(&out.optimized_gt_lt, name);
        assert!(u > g, "{name}: unoptimized {u} !> GT {g}");
        assert!(g > l, "{name}: GT {g} !> GT+LT {l}");
    }
    // ALU2 is the largest controller at every stage; MUL2 the smallest.
    for st in [&out.unoptimized, &out.optimized_gt, &out.optimized_gt_lt] {
        assert!(get(st, "ALU2") >= get(st, "ALU1"), "{}", st.label);
        assert!(get(st, "MUL2") <= get(st, "MUL1"), "{}", st.label);
    }
    // The overall GT+LT reduction is at least the paper's ~3x.
    let total_u = out.unoptimized.total_states();
    let total_l = out.optimized_gt_lt.total_states();
    assert!(
        total_l * 2 <= total_u,
        "expected >=2x total state reduction: {total_u} -> {total_l}"
    );
}

#[test]
fn figure13_gate_level_shape() {
    // Our hazard-free two-level back-end on the final controllers: every
    // controller synthesizes; MUL2 is the cheapest, the ALUs the most
    // expensive — the ordering of the paper's Figure 13.
    let out = run_flow();
    let mut by_name = std::collections::HashMap::new();
    for c in &out.controllers {
        let logic = synthesize(&c.machine, SynthOptions::default()).unwrap();
        by_name.insert(
            c.machine.name().to_string(),
            (
                logic.products_single_output(),
                logic.literals_single_output(),
            ),
        );
    }
    let lit = |n: &str| by_name[n].1;
    assert!(lit("MUL2") < lit("MUL1"));
    assert!(lit("MUL2") < lit("ALU1"));
    assert!(lit("MUL1") < lit("ALU2"));
}

#[test]
fn figure13_published_totals_are_the_papers() {
    let (yp, yl, op, ol) = figure_13_totals();
    assert_eq!((yp, yl, op, ol), (93, 307, 73, 244));
}

#[test]
fn gt1_speeds_up_the_loop() {
    // The point of loop parallelism: with slow multipliers the GT graph
    // finishes strictly earlier than the original.
    use adcs_sim::exec::{execute, ExecOptions};
    use adcs_sim::DelayModel;
    let d = diffeq(DiffeqParams::default()).unwrap();
    let out = run_flow();
    let delays = DelayModel::uniform(1).with_fu(d.mul1, 4).with_fu(d.mul2, 4);
    let before = execute(&d.cdfg, d.initial.clone(), &delays, &ExecOptions::default())
        .unwrap()
        .time;
    let after = execute(
        &out.cdfg,
        d.initial.clone(),
        &delays,
        &ExecOptions::default(),
    )
    .unwrap()
    .time;
    assert!(after < before, "{after} !< {before}");
}

#[test]
fn figure13_shared_synthesis_improves_on_single_output() {
    // Minimalist-style multi-output minimization (shared AND plane) must
    // verify hazard-freedom on every controller and never cost more
    // products than deduplicating the single-output covers after the fact.
    let out = run_flow();
    for c in &out.controllers {
        let single = synthesize(&c.machine, SynthOptions::default()).unwrap();
        let shared = synthesize(
            &c.machine,
            SynthOptions {
                share_products: true,
                ..SynthOptions::default()
            },
        )
        .unwrap();
        assert_eq!(shared.functions.len(), single.functions.len());
        assert!(
            shared.products_shared() <= single.products_shared(),
            "{}: {} !<= {}",
            c.machine.name(),
            shared.products_shared(),
            single.products_shared()
        );
    }
}
