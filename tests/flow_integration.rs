//! Cross-crate pipeline integration: transforms compose, extraction
//! produces valid machines at every stage, and the logic back-end accepts
//! every final controller.

use adcs::channel::ChannelMap;
use adcs::extract::{extract, ExpansionStyle, ExtractOptions};
use adcs::flow::{Flow, FlowOptions};
use adcs::gt::{
    gt1_loop_parallelism, gt2_remove_dominated, gt3_relative_timing, gt4_merge_assignments,
    gt5_channel_elimination, Gt5Options,
};
use adcs::timing::TimingModel;
use adcs_cdfg::benchmarks::{diffeq, fir, gcd, DiffeqParams};
use adcs_hfmin::{synthesize, SynthOptions};

#[test]
fn every_stage_produces_valid_xbm_machines() {
    let d = diffeq(DiffeqParams::default()).unwrap();

    // Stage 0: raw graph, per-arc channels, sequential style.
    let ch0 = ChannelMap::per_arc(&d.cdfg).unwrap();
    let ex0 = extract(
        &d.cdfg,
        &ch0,
        &ExtractOptions {
            style: ExpansionStyle::Sequential,
        },
    )
    .unwrap();
    assert_eq!(ex0.controllers.len(), 4);
    for c in &ex0.controllers {
        adcs_xbm::validate::validate(&c.machine).unwrap();
    }

    // Stage 1: transformed graph, compact style.
    let mut g = d.cdfg.clone();
    gt1_loop_parallelism(&mut g).unwrap();
    gt2_remove_dominated(&mut g).unwrap();
    let model = TimingModel::uniform(1, 2)
        .with_class("MUL", 2, 4)
        .with_samples(16);
    gt3_relative_timing(&mut g, &d.initial, &model).unwrap();
    gt4_merge_assignments(&mut g).unwrap();
    let mut ch = ChannelMap::per_arc(&g).unwrap();
    gt5_channel_elimination(&mut g, &mut ch, Gt5Options::default()).unwrap();
    let ex1 = extract(
        &g,
        &ch,
        &ExtractOptions {
            style: ExpansionStyle::Compact,
        },
    )
    .unwrap();
    for c in &ex1.controllers {
        adcs_xbm::validate::validate(&c.machine).unwrap();
    }
}

#[test]
fn final_controllers_synthesize_to_hazard_free_logic() {
    let d = diffeq(DiffeqParams::default()).unwrap();
    let out = Flow::new(d.cdfg.clone(), d.initial.clone())
        .run(&FlowOptions::default())
        .unwrap();
    let mut total_products = 0;
    for c in &out.controllers {
        let logic = synthesize(&c.machine, SynthOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", c.machine.name()));
        assert!(logic.products_single_output() > 0, "{}", c.machine.name());
        assert!(logic.literals_shared() <= logic.literals_single_output());
        total_products += logic.products_single_output();
    }
    assert!(total_products > 0);
}

#[test]
fn gcd_and_fir_survive_the_whole_flow() {
    let g = gcd(30, 12).unwrap();
    let out = Flow::new(g.cdfg.clone(), g.initial.clone())
        .run(&FlowOptions::default())
        .unwrap();
    assert!(out.optimized_gt.channels <= out.unoptimized.channels);
    for c in &out.controllers {
        adcs_xbm::validate::validate(&c.machine).unwrap();
    }

    let f = fir([1, 2, 3, 4], [4, 3, 2, 1], 9).unwrap();
    let out = Flow::new(f.cdfg.clone(), f.initial.clone())
        .run(&FlowOptions::default())
        .unwrap();
    assert!(out.optimized_gt.channels < out.unoptimized.channels);
}

#[test]
fn disabled_transforms_leave_the_channel_count_at_the_baseline() {
    let d = diffeq(DiffeqParams::default()).unwrap();
    let opts = FlowOptions {
        gt1: false,
        gt2: false,
        gt3: false,
        gt4: false,
        gt5: Gt5Options {
            multiplexing: false,
            concurrency_reduction: false,
            symmetrization: false,
            ..Gt5Options::default()
        },
        ..FlowOptions::default()
    };
    let out = Flow::new(d.cdfg.clone(), d.initial.clone())
        .run(&opts)
        .unwrap();
    assert_eq!(out.unoptimized.channels, out.optimized_gt.channels);
}

#[test]
fn lt_reports_account_for_the_state_reduction() {
    let d = diffeq(DiffeqParams::default()).unwrap();
    let out = Flow::new(d.cdfg.clone(), d.initial.clone())
        .run(&FlowOptions::default())
        .unwrap();
    // LT4 contraction is the dominant state reducer; every controller
    // should have contracted at least one wait.
    for (rep, (name, _)) in out.lt_reports.iter().zip(&out.optimized_gt.machines) {
        assert!(rep.acks_removed > 0, "{name}: {rep:?}");
        assert!(rep.contracted > 0, "{name}: {rep:?}");
    }
}

#[test]
fn synthesized_logic_cosimulates_against_the_controllers() {
    // Evaluate the hazard-free covers as combinational logic with state
    // feedback, lock-step against the burst-mode interpreter, for every
    // final DIFFEQ controller.
    let d = diffeq(DiffeqParams::default()).unwrap();
    let out = Flow::new(d.cdfg.clone(), d.initial.clone())
        .run(&FlowOptions::default())
        .unwrap();
    for c in &out.controllers {
        let logic = synthesize(&c.machine, SynthOptions::default()).unwrap();
        let edges = adcs_hfmin::gatesim::cosimulate(&c.machine, &logic, 40)
            .unwrap_or_else(|e| panic!("{}: {e}", c.machine.name()));
        assert!(
            edges >= 20,
            "{}: only {edges} edges driven",
            c.machine.name()
        );
    }
}

#[test]
fn yun_reconstruction_logic_cosimulates() {
    for m in adcs::yun::yun_controllers().unwrap() {
        let logic = synthesize(&m, SynthOptions::default()).unwrap();
        let edges = adcs_hfmin::gatesim::cosimulate(&m, &logic, 30)
            .unwrap_or_else(|e| panic!("{}: {e}", m.name()));
        assert!(edges >= 10, "{}", m.name());
    }
}

#[test]
fn exhaustive_exploration_finds_the_full_configuration_channel_optimal() {
    use adcs::explore::{explore_exhaustive, Objective};
    use adcs::timing::TimingModel;
    let d = diffeq(DiffeqParams::default()).unwrap();
    let base = FlowOptions {
        verify_seeds: 1,
        timing: TimingModel::uniform(1, 2)
            .with_class("MUL", 2, 4)
            .with_samples(4),
        ..FlowOptions::default()
    };
    let points = explore_exhaustive(&d.cdfg, &d.initial, &base, Objective::Channels).unwrap();
    assert!(points.len() > 32, "most configurations should complete");
    let best = &points[0];
    assert_eq!(best.channels, 5, "{best:?}");
    // The best configuration includes GT5 (bit 4) — channels cannot reach
    // 5 without channel elimination.
    assert!(best.config.4, "{best:?}");
    // And the worst completed configuration keeps the full 17.
    assert_eq!(points.last().unwrap().channels, 17);
}

#[test]
fn shipped_design_files_parse_and_flow() {
    // Every .adcs file in designs/ must parse and survive the full default
    // flow; the transformed graph must compute the same registers as the
    // original under a unit delay model.
    use adcs_sim::exec::{execute, ExecOptions};
    use adcs_sim::DelayModel;
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../designs");
    let mut count = 0;
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("adcs") {
            continue;
        }
        count += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        let prog = adcs_cdfg::parse::parse_program(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let before = execute(
            &prog.cdfg,
            prog.initial.clone(),
            &DelayModel::uniform(1),
            &ExecOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let out = Flow::new(prog.cdfg.clone(), prog.initial.clone())
            .run(&FlowOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(!out.controllers.is_empty(), "{}", path.display());
        let after = execute(
            &out.cdfg,
            prog.initial.clone(),
            &DelayModel::uniform(1),
            &ExecOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(before.registers, after.registers, "{}", path.display());
    }
    assert!(count >= 4, "expected the shipped designs, found {count}");
}
