//! Regression gate for the bit-packed cube kernel: the flow's synthesized
//! logic for every paper controller must (a) co-simulate correctly against
//! its burst-mode machine at the gate level and (b) land on exactly the
//! product/literal counts recorded in EXPERIMENTS.md before the kernel
//! rewrite — the covering objective has a unique optimum value, so the
//! counts are representation-independent.

use adcs::flow::{Flow, FlowOptions};
use adcs_cdfg::benchmarks::{diffeq, DiffeqParams};

/// Figure 13 "ours (measured)" column, pinned pre-rewrite.
const EXPECTED: [(&str, usize, usize); 4] = [
    ("ALU1", 58, 175),
    ("ALU2", 78, 265),
    ("MUL1", 51, 164),
    ("MUL2", 33, 90),
];

#[test]
fn packed_kernel_logic_matches_pinned_counts_and_cosimulates() {
    let d = diffeq(DiffeqParams::default()).unwrap();
    let out = Flow::new(d.cdfg.clone(), d.initial.clone())
        .run(&FlowOptions {
            synthesize_logic: true,
            ..FlowOptions::default()
        })
        .unwrap();
    assert_eq!(out.logic.len(), out.controllers.len());
    for (c, logic) in out.controllers.iter().zip(&out.logic) {
        let name = c.machine.name();
        let (_, products, literals) = *EXPECTED
            .iter()
            .find(|(n, _, _)| *n == name)
            .unwrap_or_else(|| panic!("unexpected controller {name}"));
        assert_eq!(
            (
                logic.products_single_output(),
                logic.literals_single_output()
            ),
            (products, literals),
            "{name}: packed kernel changed the minimization result"
        );
        let edges = adcs_hfmin::gatesim::cosimulate(&c.machine, logic, 40)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(edges >= 20, "{name}: only {edges} edges driven");
    }
    // The flow's own stage accounting must reflect the synthesis work.
    assert!(out.hfmin_cube_ops > 0);
    assert_eq!(out.hfmin_cache_misses, out.logic.len() as u64);
}
