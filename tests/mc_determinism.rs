//! Property test for the sharded-frontier model checker's central
//! contract: the verdict — including statistics and the counterexample
//! trace — is **bit-identical for every worker thread count**. Random
//! repeater networks (chains and rings, optionally with a duplicated
//! wire to provoke transmission interference) are checked at 1 and 4
//! threads under assorted state budgets, covering all three verdict
//! shapes: `Verified`, `Violation`, and `Budget`.

use adcs::mc::{model_check, McOptions, McStimuli};
use adcs_sim::network::{Wire, WireEnd};
use adcs_xbm::{Term, XbmBuilder, XbmMachine};
use proptest::prelude::*;

/// A 2-state repeater: in+ / out+ ; in- / out-.
fn repeater(name: &str) -> XbmMachine {
    let mut b = XbmBuilder::new(name);
    let i = b.input("in", false);
    let o = b.output("out", false);
    let s0 = b.state("s0");
    let s1 = b.state("s1");
    b.transition(s0, s1, [Term::rise(i)], [o]).unwrap();
    b.transition(s1, s0, [Term::fall(i)], [o]).unwrap();
    b.finish(s0).unwrap()
}

/// A random repeater network plus check stimuli.
#[derive(Clone, Debug)]
struct NetSpec {
    n: usize,
    ring: bool,
    /// Duplicate wire `dup % wires` (a second leg on the same signal pair
    /// — the classic way to put two events in flight on one input).
    dup: Option<usize>,
    /// Which machines get a start toggle (machine 0 if none selected).
    kicks: Vec<bool>,
    max_states: usize,
}

fn spec_strategy() -> impl Strategy<Value = NetSpec> {
    (
        2usize..5,
        0usize..2,
        0usize..2,
        0usize..8,
        proptest::collection::vec(0usize..2, 1..5),
        0usize..3,
    )
        .prop_map(|(n, ring, dup_on, dup, kicks, budget)| NetSpec {
            n,
            ring: ring != 0,
            dup: (dup_on != 0).then_some(dup),
            kicks: kicks.iter().map(|&k| k != 0).collect(),
            max_states: [64, 512, 4096][budget],
        })
}

fn build(spec: &NetSpec) -> (Vec<XbmMachine>, Vec<Wire>, McStimuli) {
    let ms: Vec<XbmMachine> = (0..spec.n).map(|k| repeater(&format!("m{k}"))).collect();
    let i = ms[0].signal_by_name("in").unwrap();
    let o = ms[0].signal_by_name("out").unwrap();
    let leg = |from: usize, to: usize| Wire {
        from: WireEnd {
            machine: from,
            signal: o,
        },
        to: vec![WireEnd {
            machine: to,
            signal: i,
        }],
        delay: 0,
    };
    let mut wires: Vec<Wire> = (0..spec.n - 1).map(|k| leg(k, k + 1)).collect();
    if spec.ring {
        wires.push(leg(spec.n - 1, 0));
    }
    if let Some(d) = spec.dup {
        let w = wires[d % wires.len()].clone();
        wires.push(w);
    }
    let mut kicks: Vec<(usize, adcs_xbm::SignalId)> = spec
        .kicks
        .iter()
        .enumerate()
        .filter(|&(m, &on)| on && m < spec.n)
        .map(|(m, _)| (m, i))
        .collect();
    if kicks.is_empty() {
        kicks.push((0, i));
    }
    let stim = McStimuli {
        kicks,
        ..McStimuli::default()
    };
    (ms, wires, stim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn verdicts_are_identical_at_one_and_four_threads(spec in spec_strategy()) {
        let (ms, wires, stim) = build(&spec);
        let refs: Vec<&XbmMachine> = ms.iter().collect();
        let at = |threads: usize| {
            let opts = McOptions {
                max_states: spec.max_states,
                threads: Some(threads),
                ..McOptions::default()
            };
            format!("{:?}", model_check(&refs, &wires, (), &stim, &opts).unwrap())
        };
        prop_assert_eq!(at(1), at(4));
    }
}
