//! Exhaustive-interleaving verification of the DIFFEQ controller
//! networks (`adcs::mc`): where the randomized timed simulations sample
//! delay assignments, these tests cover *all* of them — and pin down
//! exactly which timing assumptions the paper's architecture (§2.2) and
//! optimizations (§5) rely on.

use adcs::channel::ChannelMap;
use adcs::extract::{extract, ExpansionStyle, ExtractOptions, Extraction};
use adcs::flow::{Flow, FlowOptions};
use adcs::mc::{model_check_system, McOptions, McVerdict, McViolationKind};
use adcs::system::{system_parts, SystemDelays, SystemParts};
use adcs_cdfg::benchmarks::{diffeq, diffeq_reference, DiffeqDesign, DiffeqParams};

/// One Euler iteration keeps the exhaustive space tractable.
fn one_iter() -> DiffeqParams {
    DiffeqParams {
        x0: 0,
        y0: 1,
        u0: 2,
        dx: 1,
        a: 1,
    }
}

fn baseline_parts(d: &DiffeqDesign) -> (ChannelMap, Extraction) {
    let channels = ChannelMap::per_arc(&d.cdfg).unwrap();
    let ex = extract(
        &d.cdfg,
        &channels,
        &ExtractOptions {
            style: ExpansionStyle::Sequential,
        },
    )
    .unwrap();
    (channels, ex)
}

fn check(parts: &SystemParts<'_>, opts: &McOptions) -> McVerdict {
    model_check_system(parts, opts).unwrap()
}

#[test]
fn unoptimized_network_is_delay_insensitive_under_the_setup_assumption() {
    // The 17-channel baseline quiesces with the reference result under
    // EVERY wire/datapath delay assignment, given only the burst-mode
    // setup-time assumption on sampled condition levels.
    let params = one_iter();
    let d = diffeq(params).unwrap();
    let (channels, ex) = baseline_parts(&d);
    let parts = system_parts(
        &d.cdfg,
        &channels,
        &ex,
        d.initial.clone(),
        SystemDelays::default(),
    )
    .unwrap();
    match check(&parts, &McOptions::default()) {
        McVerdict::Verified { outcome, stats } => {
            let get = |n: &str| {
                outcome
                    .iter()
                    .find(|(r, _)| r.name() == n)
                    .map(|(_, v)| *v)
                    .unwrap()
            };
            let (x, y, u) = diffeq_reference(params);
            assert_eq!((get("X"), get("Y"), get("U")), (x, y, u));
            assert_eq!(stats.terminals, 1, "a unique quiescent outcome");
            assert!(stats.states > 10_000, "nontrivial space: {stats:?}");
        }
        other => panic!("expected full verification, got {other:?}"),
    }
}

#[test]
fn the_level_setup_assumption_is_load_bearing_even_for_the_baseline() {
    // With condition-level updates racing the rest of the network, some
    // interleaving samples a stale level and diverges — the architecture's
    // fundamental-mode assumption is not introduced by the optimizations.
    let d = diffeq(one_iter()).unwrap();
    let (channels, ex) = baseline_parts(&d);
    let parts = system_parts(
        &d.cdfg,
        &channels,
        &ex,
        d.initial.clone(),
        SystemDelays::default(),
    )
    .unwrap();
    let opts = McOptions {
        synchronous_levels: false,
        ..McOptions::default()
    };
    match check(&parts, &opts) {
        McVerdict::Violation { kind, .. } => {
            assert_eq!(kind, McViolationKind::DivergentOutcome)
        }
        other => panic!("expected a level race, got {other:?}"),
    }
}

#[test]
fn the_optimized_network_relies_on_relative_timing() {
    // The GT5-multiplexed channels are only safe because operation
    // latency exceeds a wire hop (§5). Dropping the timing regime lets the
    // checker put two events in flight on one multiplexed channel wire —
    // the transmission interference the paper's analysis excludes.
    let d = diffeq(one_iter()).unwrap();
    let out = Flow::new(d.cdfg.clone(), d.initial.clone())
        .run(&FlowOptions::default())
        .unwrap();
    let ex = Extraction {
        controllers: out.controllers.clone(),
    };
    let parts = system_parts(
        &out.cdfg,
        &out.channels,
        &ex,
        d.initial.clone(),
        SystemDelays::default(),
    )
    .unwrap();
    let opts = McOptions {
        synchronous_levels: false,
        ..McOptions::default()
    };
    match check(&parts, &opts) {
        McVerdict::Violation { kind, detail, .. } => {
            assert_eq!(kind, McViolationKind::WireInterference, "{detail}");
            assert!(detail.contains("ch"), "on a channel wire: {detail}");
        }
        other => panic!("expected wire interference, got {other:?}"),
    }
}

#[test]
fn the_optimized_zero_iteration_run_verifies_without_any_assumption() {
    // When the loop body never executes, the optimized network's straight
    // path is fully delay-insensitive — levels racing included.
    let params = DiffeqParams {
        x0: 3,
        y0: 1,
        u0: 2,
        dx: 1,
        a: 3,
    };
    let d = diffeq(params).unwrap();
    let out = Flow::new(d.cdfg.clone(), d.initial.clone())
        .run(&FlowOptions::default())
        .unwrap();
    let ex = Extraction {
        controllers: out.controllers.clone(),
    };
    let parts = system_parts(
        &out.cdfg,
        &out.channels,
        &ex,
        d.initial.clone(),
        SystemDelays::default(),
    )
    .unwrap();
    for sync in [true, false] {
        let opts = McOptions {
            synchronous_levels: sync,
            ..McOptions::default()
        };
        match check(&parts, &opts) {
            McVerdict::Verified { outcome, .. } => {
                let x = outcome.iter().find(|(r, _)| r.name() == "X").unwrap().1;
                assert_eq!(x, 3);
            }
            other => panic!("sync={sync}: expected verification, got {other:?}"),
        }
    }
}

#[test]
fn the_full_optimized_space_exceeds_any_small_budget() {
    // Documenting the scale: GT1's cross-iteration overlap makes even the
    // one-iteration optimized network's interleaving space huge (probed
    // past 6M states); a small budget must report Budget, not a false
    // verdict either way.
    let d = diffeq(one_iter()).unwrap();
    let out = Flow::new(d.cdfg.clone(), d.initial.clone())
        .run(&FlowOptions::default())
        .unwrap();
    let ex = Extraction {
        controllers: out.controllers.clone(),
    };
    let parts = system_parts(
        &out.cdfg,
        &out.channels,
        &ex,
        d.initial.clone(),
        SystemDelays::default(),
    )
    .unwrap();
    let opts = McOptions {
        max_states: 20_000,
        ..McOptions::default()
    };
    assert!(matches!(check(&parts, &opts), McVerdict::Budget(_)));
}

#[test]
fn gcd_baseline_with_conditionals_is_delay_insensitive() {
    // The checker also covers IF/ELSE decision distribution: the
    // unoptimized GCD network (conditional branches inside the loop)
    // verifies for all delays under the setup-time assumption, landing on
    // gcd(2,1) = 1 in every interleaving.
    use adcs_cdfg::benchmarks::{gcd, gcd_reference};
    let d = gcd(2, 1).unwrap();
    let channels = ChannelMap::per_arc(&d.cdfg).unwrap();
    let ex = extract(
        &d.cdfg,
        &channels,
        &ExtractOptions {
            style: ExpansionStyle::Sequential,
        },
    )
    .unwrap();
    let parts = system_parts(
        &d.cdfg,
        &channels,
        &ex,
        d.initial.clone(),
        SystemDelays::default(),
    )
    .unwrap();
    match check(&parts, &McOptions::default()) {
        McVerdict::Verified { outcome, stats } => {
            let x = outcome.iter().find(|(r, _)| r.name() == "x").unwrap().1;
            assert_eq!(x, gcd_reference(2, 1));
            assert_eq!(stats.terminals, 1);
        }
        other => panic!("expected verification, got {other:?}"),
    }
}
