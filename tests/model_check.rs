//! Exhaustive-interleaving verification of the DIFFEQ controller
//! networks (`adcs::mc`): where the randomized timed simulations sample
//! delay assignments, these tests cover *all* of them — and pin down
//! exactly which timing assumptions the paper's architecture (§2.2) and
//! optimizations (§5) rely on.

use adcs::channel::ChannelMap;
use adcs::extract::{extract, ExpansionStyle, ExtractOptions, Extraction};
use adcs::flow::{Flow, FlowOptions};
use adcs::mc::{model_check_system, McOptions, McOrder, McVerdict, McViolationKind};
use adcs::system::{system_parts, SystemDelays, SystemParts};
use adcs_cdfg::benchmarks::{diffeq, diffeq_reference, DiffeqDesign, DiffeqParams};

/// One Euler iteration keeps the exhaustive space tractable.
fn one_iter() -> DiffeqParams {
    DiffeqParams {
        x0: 0,
        y0: 1,
        u0: 2,
        dx: 1,
        a: 1,
    }
}

fn baseline_parts(d: &DiffeqDesign) -> (ChannelMap, Extraction) {
    let channels = ChannelMap::per_arc(&d.cdfg).unwrap();
    let ex = extract(
        &d.cdfg,
        &channels,
        &ExtractOptions {
            style: ExpansionStyle::Sequential,
        },
    )
    .unwrap();
    (channels, ex)
}

fn check(parts: &SystemParts<'_>, opts: &McOptions) -> McVerdict {
    model_check_system(parts, opts).unwrap()
}

#[test]
fn unoptimized_network_is_delay_insensitive_under_the_setup_assumption() {
    // The 17-channel baseline quiesces with the reference result under
    // EVERY wire/datapath delay assignment, given only the burst-mode
    // setup-time assumption on sampled condition levels.
    let params = one_iter();
    let d = diffeq(params).unwrap();
    let (channels, ex) = baseline_parts(&d);
    let parts = system_parts(
        &d.cdfg,
        &channels,
        &ex,
        d.initial.clone(),
        SystemDelays::default(),
    )
    .unwrap();
    match check(&parts, &McOptions::default()) {
        McVerdict::Verified { outcome, stats } => {
            let get = |n: &str| {
                outcome
                    .iter()
                    .find(|(r, _)| r.name() == n)
                    .map(|(_, v)| *v)
                    .unwrap()
            };
            let (x, y, u) = diffeq_reference(params);
            assert_eq!((get("X"), get("Y"), get("U")), (x, y, u));
            assert_eq!(stats.terminals, 1, "a unique quiescent outcome");
            assert!(stats.states > 10_000, "nontrivial space: {stats:?}");
        }
        other => panic!("expected full verification, got {other:?}"),
    }
}

#[test]
fn the_level_setup_assumption_is_load_bearing_even_for_the_baseline() {
    // With condition-level updates racing the rest of the network, some
    // interleaving samples a stale level and diverges — the architecture's
    // fundamental-mode assumption is not introduced by the optimizations.
    let d = diffeq(one_iter()).unwrap();
    let (channels, ex) = baseline_parts(&d);
    let parts = system_parts(
        &d.cdfg,
        &channels,
        &ex,
        d.initial.clone(),
        SystemDelays::default(),
    )
    .unwrap();
    let opts = McOptions {
        synchronous_levels: false,
        ..McOptions::default()
    };
    match check(&parts, &opts) {
        McVerdict::Violation { kind, .. } => {
            assert_eq!(kind, McViolationKind::DivergentOutcome)
        }
        other => panic!("expected a level race, got {other:?}"),
    }
}

#[test]
fn the_optimized_network_relies_on_relative_timing() {
    // The GT5-multiplexed channels are only safe because operation
    // latency exceeds a wire hop (§5). Dropping the timing regime lets the
    // checker put two events in flight on one multiplexed channel wire —
    // the transmission interference the paper's analysis excludes. The
    // violating interleaving is deep and narrow (it sits past wave 19 of a
    // space whose 19th wave is already >10⁶ states wide), so the hunt uses
    // the depth-first order: the wave search would exhaust any affordable
    // budget before reaching it.
    let d = diffeq(one_iter()).unwrap();
    let out = Flow::new(d.cdfg.clone(), d.initial.clone())
        .run(&FlowOptions::default())
        .unwrap();
    let ex = Extraction {
        controllers: out.controllers.clone(),
    };
    let parts = system_parts(
        &out.cdfg,
        &out.channels,
        &ex,
        d.initial.clone(),
        SystemDelays::default(),
    )
    .unwrap();
    let opts = McOptions {
        synchronous_levels: false,
        order: McOrder::Depth,
        ..McOptions::default()
    };
    match check(&parts, &opts) {
        McVerdict::Violation {
            kind,
            detail,
            stats,
            ..
        } => {
            assert_eq!(kind, McViolationKind::WireInterference, "{detail}");
            assert!(detail.contains("ch"), "on a channel wire: {detail}");
            assert!(stats.states < 4_000_000, "found within budget: {stats:?}");
        }
        other => panic!("expected wire interference, got {other:?}"),
    }
}

#[test]
fn the_optimized_zero_iteration_run_verifies_without_any_assumption() {
    // When the loop body never executes, the optimized network's straight
    // path is fully delay-insensitive — levels racing included.
    let params = DiffeqParams {
        x0: 3,
        y0: 1,
        u0: 2,
        dx: 1,
        a: 3,
    };
    let d = diffeq(params).unwrap();
    let out = Flow::new(d.cdfg.clone(), d.initial.clone())
        .run(&FlowOptions::default())
        .unwrap();
    let ex = Extraction {
        controllers: out.controllers.clone(),
    };
    let parts = system_parts(
        &out.cdfg,
        &out.channels,
        &ex,
        d.initial.clone(),
        SystemDelays::default(),
    )
    .unwrap();
    for sync in [true, false] {
        let opts = McOptions {
            synchronous_levels: sync,
            ..McOptions::default()
        };
        match check(&parts, &opts) {
            McVerdict::Verified { outcome, .. } => {
                let x = outcome.iter().find(|(r, _)| r.name() == "X").unwrap().1;
                assert_eq!(x, 3);
            }
            other => panic!("sync={sync}: expected verification, got {other:?}"),
        }
    }
}

#[test]
fn the_full_optimized_space_exceeds_any_small_budget() {
    // Documenting the scale: GT1's cross-iteration overlap makes even the
    // one-iteration optimized network's interleaving space huge (probed
    // past 6M states); a small budget must report Budget, not a false
    // verdict either way.
    let d = diffeq(one_iter()).unwrap();
    let out = Flow::new(d.cdfg.clone(), d.initial.clone())
        .run(&FlowOptions::default())
        .unwrap();
    let ex = Extraction {
        controllers: out.controllers.clone(),
    };
    let parts = system_parts(
        &out.cdfg,
        &out.channels,
        &ex,
        d.initial.clone(),
        SystemDelays::default(),
    )
    .unwrap();
    let opts = McOptions {
        max_states: 20_000,
        ..McOptions::default()
    };
    match check(&parts, &opts) {
        McVerdict::Budget(stats) => {
            // The reported count is clamped to the budget — it never
            // overshoots by the remainder of the wave that hit it.
            assert_eq!(stats.states, 20_000, "{stats:?}");
            assert!(stats.batches >= 1, "{stats:?}");
        }
        other => panic!("expected budget, got {other:?}"),
    }
}

#[test]
fn thread_count_never_changes_the_verdict_on_a_real_system() {
    // The sharded-frontier search merges per-chunk discoveries in global
    // state order, so worker count is unobservable: the GCD baseline must
    // produce bit-identical verdicts (outcome, stats, trace) at 1 and 3
    // threads.
    use adcs_cdfg::benchmarks::gcd;
    let d = gcd(2, 1).unwrap();
    let channels = ChannelMap::per_arc(&d.cdfg).unwrap();
    let ex = extract(
        &d.cdfg,
        &channels,
        &ExtractOptions {
            style: ExpansionStyle::Sequential,
        },
    )
    .unwrap();
    let parts = system_parts(
        &d.cdfg,
        &channels,
        &ex,
        d.initial.clone(),
        SystemDelays::default(),
    )
    .unwrap();
    let at = |threads| {
        let opts = McOptions {
            threads: Some(threads),
            ..McOptions::default()
        };
        format!("{:?}", check(&parts, &opts))
    };
    assert_eq!(at(1), at(3));
}

#[test]
fn a_repeat_sweep_is_served_from_the_warm_mc_cache() {
    // Exploring the same design twice over one Flow: the second sweep's
    // model checks must all be answered by the cross-candidate McCache —
    // zero new searches — and rank the candidates identically.
    use adcs::explore::{explore_exhaustive_flow, ExploreOptions, Objective};
    use adcs::flow::Flow;
    let d = diffeq(one_iter()).unwrap();
    let flow = Flow::new(d.cdfg, d.initial);
    let base = FlowOptions {
        verify_seeds: 2,
        model_check: true,
        mc: McOptions {
            max_states: 2_000,
            ..McOptions::default()
        },
        ..FlowOptions::default()
    };
    let opts = ExploreOptions::sequential();
    let cold = explore_exhaustive_flow(&flow, &base, Objective::ChannelsThenStates, opts).unwrap();
    let misses_cold = flow.mc_cache().misses();
    let hits_cold = flow.mc_cache().hits();
    let runs_cold: u64 = cold.iter().map(|p| p.mc_runs).sum();
    assert_eq!(runs_cold, cold.len() as u64, "every candidate checked once");
    assert!(misses_cold >= 1);
    let warm = explore_exhaustive_flow(&flow, &base, Objective::ChannelsThenStates, opts).unwrap();
    assert_eq!(
        flow.mc_cache().misses(),
        misses_cold,
        "the repeat sweep must not run a single new search"
    );
    let warm_runs: u64 = warm.iter().map(|p| p.mc_runs).sum();
    let warm_hits = flow.mc_cache().hits() - hits_cold;
    assert!(
        warm_hits * 2 >= warm_runs,
        "warm sweep skipped {warm_hits}/{warm_runs} checks — expected >= 50%"
    );
    assert_eq!(cold.len(), warm.len());
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.config, w.config, "warm sweep must rank identically");
        assert_eq!(c.score, w.score);
        assert_eq!(c.mc_states, w.mc_states, "cached stats are replayed");
    }
}

#[test]
fn gcd_baseline_with_conditionals_is_delay_insensitive() {
    // The checker also covers IF/ELSE decision distribution: the
    // unoptimized GCD network (conditional branches inside the loop)
    // verifies for all delays under the setup-time assumption, landing on
    // gcd(2,1) = 1 in every interleaving.
    use adcs_cdfg::benchmarks::{gcd, gcd_reference};
    let d = gcd(2, 1).unwrap();
    let channels = ChannelMap::per_arc(&d.cdfg).unwrap();
    let ex = extract(
        &d.cdfg,
        &channels,
        &ExtractOptions {
            style: ExpansionStyle::Sequential,
        },
    )
    .unwrap();
    let parts = system_parts(
        &d.cdfg,
        &channels,
        &ex,
        d.initial.clone(),
        SystemDelays::default(),
    )
    .unwrap();
    match check(&parts, &McOptions::default()) {
        McVerdict::Verified { outcome, stats } => {
            let x = outcome.iter().find(|(r, _)| r.name() == "x").unwrap().1;
            assert_eq!(x, gcd_reference(2, 1));
            assert_eq!(stats.terminals, 1);
        }
        other => panic!("expected verification, got {other:?}"),
    }
}
