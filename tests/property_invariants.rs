//! Property-based tests over randomly generated straight-line CDFGs: the
//! builder's derived constraints must always produce graphs that validate,
//! execute deterministically, and stay value-equivalent under GT2/GT4 and
//! arbitrary delay jitter.

use adcs_cdfg::benchmarks::RegFile;
use adcs_cdfg::builder::CdfgBuilder;
use adcs_cdfg::{Cdfg, Reg};
use adcs_sim::exec::{execute, ExecOptions};
use adcs_sim::DelayModel;
use proptest::prelude::*;

/// A random straight-line program over a small register set, with random
/// binding onto 2-3 units.
#[derive(Clone, Debug)]
struct Program {
    stmts: Vec<(usize, String)>,
    nfus: usize,
}

fn program_strategy() -> impl Strategy<Value = Program> {
    let regs = ["r0", "r1", "r2", "r3", "r4"];
    let ops = ["+", "-", "*"];
    let stmt = (0usize..5, 0usize..5, 0usize..3, 0usize..5, 0usize..3).prop_map(
        move |(d, a, op, b, fu)| {
            (
                fu,
                format!("{} := {} {} {}", regs[d], regs[a], ops[op], regs[b]),
            )
        },
    );
    (proptest::collection::vec(stmt, 1..12), 2usize..4)
        .prop_map(|(stmts, nfus)| Program {
            stmts: stmts
                .into_iter()
                .map(|(fu, s)| (fu % 3, s))
                .collect(),
            nfus,
        })
}

fn build(p: &Program) -> Cdfg {
    let mut b = CdfgBuilder::new();
    let fus: Vec<_> = (0..p.nfus).map(|i| b.add_fu(format!("FU{i}"))).collect();
    for (fu, s) in &p.stmts {
        b.stmt(fus[fu % p.nfus], s).unwrap();
    }
    b.finish().unwrap()
}

fn initial() -> RegFile {
    (0..5).map(|i| (Reg::new(format!("r{i}")), i as i64 + 1)).collect()
}

/// Reference: execute the statements in program order.
fn reference(p: &Program) -> RegFile {
    let mut regs = initial();
    for (_, s) in &p.stmts {
        let stmt: adcs_cdfg::RtlStatement = s.parse().unwrap();
        let v = stmt.eval(|r| regs[r]);
        regs.insert(stmt.dest.clone(), v);
    }
    regs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn builder_output_always_validates(p in program_strategy()) {
        let g = build(&p);
        prop_assert!(adcs_cdfg::validate::validate(&g).is_ok());
        prop_assert!(adcs_cdfg::validate::crossing_arcs(&g).is_empty());
    }

    #[test]
    fn execution_matches_program_order_semantics(p in program_strategy()) {
        let g = build(&p);
        let r = execute(&g, initial(), &DelayModel::uniform(1), &ExecOptions::default()).unwrap();
        prop_assert!(r.finished);
        let want = reference(&p);
        for (reg, v) in &want {
            prop_assert_eq!(r.registers.get(reg), Some(v), "{}", reg);
        }
    }

    #[test]
    fn execution_is_delay_insensitive(p in program_strategy(), seed in 0u64..32) {
        // The derived constraint arcs must make the dataflow outcome
        // independent of unit delays.
        let g = build(&p);
        let want = reference(&p);
        let delays = DelayModel::uniform(1).with_jitter(seed, 5);
        let r = execute(&g, initial(), &delays, &ExecOptions::default()).unwrap();
        for (reg, v) in &want {
            prop_assert_eq!(r.registers.get(reg), Some(v), "{}", reg);
        }
    }

    #[test]
    fn gt2_preserves_values(p in program_strategy(), seed in 0u64..16) {
        let mut g = build(&p);
        adcs::gt::gt2_remove_dominated(&mut g).unwrap();
        let want = reference(&p);
        let delays = DelayModel::uniform(1).with_jitter(seed, 4);
        let r = execute(&g, initial(), &delays, &ExecOptions::default()).unwrap();
        for (reg, v) in &want {
            prop_assert_eq!(r.registers.get(reg), Some(v), "{}", reg);
        }
    }

    #[test]
    fn gt2_only_removes_dominated_arcs(p in program_strategy()) {
        let mut g = build(&p);
        let before = g.arc_count();
        let rep = adcs::gt::gt2_remove_dominated(&mut g).unwrap();
        prop_assert_eq!(g.arc_count() + rep.removed.len(), before);
        // After GT2, no arc is dominated any more.
        for (id, _) in g.arcs() {
            prop_assert!(!adcs::gt::certain_dominated(&g, id));
        }
    }

    #[test]
    fn gt4_preserves_values_with_moves(p in program_strategy(), seed in 0u64..8) {
        // Append register moves so GT4 has merge candidates.
        let mut p = p;
        p.stmts.push((0, "r4 := r0".to_string()));
        p.stmts.push((1, "r3 := r1".to_string()));
        let mut g = build(&p);
        adcs::gt::gt4_merge_assignments(&mut g).unwrap();
        let want = reference(&p);
        let delays = DelayModel::uniform(1).with_jitter(seed, 4);
        let r = execute(&g, initial(), &delays, &ExecOptions::default()).unwrap();
        for (reg, v) in &want {
            prop_assert_eq!(r.registers.get(reg), Some(v), "{}", reg);
        }
    }
}
