//! Property-based tests over randomly generated straight-line CDFGs: the
//! builder's derived constraints must always produce graphs that validate,
//! execute deterministically, and stay value-equivalent under GT2/GT4 and
//! arbitrary delay jitter.

use adcs_cdfg::benchmarks::RegFile;
use adcs_cdfg::builder::CdfgBuilder;
use adcs_cdfg::{Cdfg, Reg};
use adcs_sim::exec::{execute, ExecOptions};
use adcs_sim::DelayModel;
use proptest::prelude::*;

/// A random straight-line program over a small register set, with random
/// binding onto 2-3 units.
#[derive(Clone, Debug)]
struct Program {
    stmts: Vec<(usize, String)>,
    nfus: usize,
}

fn program_strategy() -> impl Strategy<Value = Program> {
    let regs = ["r0", "r1", "r2", "r3", "r4"];
    let ops = ["+", "-", "*"];
    let stmt = (0usize..5, 0usize..5, 0usize..3, 0usize..5, 0usize..3).prop_map(
        move |(d, a, op, b, fu)| {
            (
                fu,
                format!("{} := {} {} {}", regs[d], regs[a], ops[op], regs[b]),
            )
        },
    );
    (proptest::collection::vec(stmt, 1..12), 2usize..4).prop_map(|(stmts, nfus)| Program {
        stmts: stmts.into_iter().map(|(fu, s)| (fu % 3, s)).collect(),
        nfus,
    })
}

fn build(p: &Program) -> Cdfg {
    let mut b = CdfgBuilder::new();
    let fus: Vec<_> = (0..p.nfus).map(|i| b.add_fu(format!("FU{i}"))).collect();
    for (fu, s) in &p.stmts {
        b.stmt(fus[fu % p.nfus], s).unwrap();
    }
    b.finish().unwrap()
}

fn initial() -> RegFile {
    (0..5)
        .map(|i| (Reg::new(format!("r{i}")), i as i64 + 1))
        .collect()
}

/// Reference: execute the statements in program order.
fn reference(p: &Program) -> RegFile {
    let mut regs = initial();
    for (_, s) in &p.stmts {
        let stmt: adcs_cdfg::RtlStatement = s.parse().unwrap();
        let v = stmt.eval(|r| regs[r]);
        regs.insert(stmt.dest.clone(), v);
    }
    regs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn builder_output_always_validates(p in program_strategy()) {
        let g = build(&p);
        prop_assert!(adcs_cdfg::validate::validate(&g).is_ok());
        prop_assert!(adcs_cdfg::validate::crossing_arcs(&g).is_empty());
    }

    #[test]
    fn execution_matches_program_order_semantics(p in program_strategy()) {
        let g = build(&p);
        let r = execute(&g, initial(), &DelayModel::uniform(1), &ExecOptions::default()).unwrap();
        prop_assert!(r.finished);
        let want = reference(&p);
        for (reg, v) in &want {
            prop_assert_eq!(r.registers.get(reg), Some(v), "{}", reg);
        }
    }

    #[test]
    fn execution_is_delay_insensitive(p in program_strategy(), seed in 0u64..32) {
        // The derived constraint arcs must make the dataflow outcome
        // independent of unit delays.
        let g = build(&p);
        let want = reference(&p);
        let delays = DelayModel::uniform(1).with_jitter(seed, 5);
        let r = execute(&g, initial(), &delays, &ExecOptions::default()).unwrap();
        for (reg, v) in &want {
            prop_assert_eq!(r.registers.get(reg), Some(v), "{}", reg);
        }
    }

    #[test]
    fn gt2_preserves_values(p in program_strategy(), seed in 0u64..16) {
        let mut g = build(&p);
        adcs::gt::gt2_remove_dominated(&mut g).unwrap();
        let want = reference(&p);
        let delays = DelayModel::uniform(1).with_jitter(seed, 4);
        let r = execute(&g, initial(), &delays, &ExecOptions::default()).unwrap();
        for (reg, v) in &want {
            prop_assert_eq!(r.registers.get(reg), Some(v), "{}", reg);
        }
    }

    #[test]
    fn gt2_only_removes_dominated_arcs(p in program_strategy()) {
        let mut g = build(&p);
        let before = g.arc_count();
        let rep = adcs::gt::gt2_remove_dominated(&mut g).unwrap();
        prop_assert_eq!(g.arc_count() + rep.removed.len(), before);
        // After GT2, no arc is dominated any more.
        for (id, _) in g.arcs() {
            prop_assert!(!adcs::gt::certain_dominated(&g, id));
        }
    }

    #[test]
    fn reach_cache_matches_fresh_bfs_under_mutation(
        p in program_strategy(),
        edits in proptest::collection::vec((0usize..64, 0usize..64, 0usize..3), 1..8),
        probes in proptest::collection::vec((0usize..64, 0usize..64, 0u32..2), 4..10),
    ) {
        // The memoized cache must stay coherent across arbitrary arc
        // insertions and removals: every answer equals a fresh BFS on the
        // current graph, with one long-lived cache spanning all edits
        // (invalidation rides on the graph's version stamp).
        use adcs_cdfg::analysis::{reaches_within, ReachCache};
        use adcs_cdfg::{ArcId, NodeId, Role};

        let mut g = build(&p);
        let cache = ReachCache::new();
        let nodes: Vec<NodeId> = g.nodes().map(|(id, _)| id).collect();
        prop_assert!(!nodes.is_empty());
        for &(a, b, action) in &edits {
            let arcs: Vec<ArcId> = g.arcs().map(|(id, _)| id).collect();
            match action {
                0 => {
                    let src = nodes[a % nodes.len()];
                    let dst = nodes[b % nodes.len()];
                    g.add_arc(src, dst, Role::Scheduling, a % 2 == 1);
                }
                1 if !arcs.is_empty() => {
                    g.remove_arc(arcs[a % arcs.len()]).unwrap();
                }
                _ => {}
            }
            let live: Vec<ArcId> = g.arcs().map(|(id, _)| id).collect();
            for &(x, y, w) in &probes {
                let src = nodes[x % nodes.len()];
                let dst = nodes[y % nodes.len()];
                let exclude = if x % 3 == 0 || live.is_empty() {
                    None
                } else {
                    Some(live[y % live.len()])
                };
                prop_assert_eq!(
                    cache.reaches_within(&g, src, dst, w, exclude),
                    reaches_within(&g, src, dst, w, exclude),
                    "cache diverged: {} -> {} within {} excluding {:?}",
                    src, dst, w, exclude
                );
            }
        }
        // The cache actually caches: with no interleaved edit, repeating a
        // query must be answered from memory.
        let hits_before = cache.hits();
        let src = nodes[0];
        let dst = nodes[nodes.len() - 1];
        let fresh = reaches_within(&g, src, dst, 1, None);
        prop_assert_eq!(cache.reaches_within(&g, src, dst, 1, None), fresh);
        prop_assert_eq!(cache.reaches_within(&g, src, dst, 1, None), fresh);
        prop_assert!(cache.hits() > hits_before);
    }

    #[test]
    fn gt4_preserves_values_with_moves(p in program_strategy(), seed in 0u64..8) {
        // Append register moves so GT4 has merge candidates.
        let mut p = p;
        p.stmts.push((0, "r4 := r0".to_string()));
        p.stmts.push((1, "r3 := r1".to_string()));
        let mut g = build(&p);
        adcs::gt::gt4_merge_assignments(&mut g).unwrap();
        let want = reference(&p);
        let delays = DelayModel::uniform(1).with_jitter(seed, 4);
        let r = execute(&g, initial(), &delays, &ExecOptions::default()).unwrap();
        for (reg, v) in &want {
            prop_assert_eq!(r.registers.get(reg), Some(v), "{}", reg);
        }
    }
}
