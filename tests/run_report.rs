//! Observability golden tests: the `RunReport` emitted by a real flow
//! run survives a JSON round-trip bit-exactly, and — the central
//! determinism contract — the canonical projection (span tree shape,
//! ordinals, metadata, metric values; everything but wall-clock
//! durations) is **identical at 1 worker thread and at 4**. Extends the
//! `mc_determinism` pattern from the verdict to the whole run record.

use adcs::flow::{Flow, FlowOptions};
use adcs::report::run_report;
use adcs_cdfg::benchmarks::{diffeq, DiffeqParams};
use adcs_obs::{RunReport, SpanNode};

fn options() -> FlowOptions {
    FlowOptions {
        synthesize_logic: true,
        verify_seeds: 2,
        ..FlowOptions::default()
    }
}

/// Runs the full flow under a pool of `threads` workers with span
/// collection on, and returns the finished report.
fn report_at(threads: usize) -> RunReport {
    let d = diffeq(DiffeqParams::default()).unwrap();
    let flow = Flow::new(d.cdfg.clone(), d.initial.clone());
    let opts = options();
    let (result, spans) = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
        .install(|| adcs_obs::collect("adcs.synth", || flow.run(&opts)));
    let out = result.unwrap();
    run_report("diffeq", &out, &flow, threads as u64, Some(spans))
}

/// Span names along a preorder walk — the tree *shape* in one list.
fn preorder(n: &SpanNode, out: &mut Vec<String>) {
    out.push(format!("{}#{:?}", n.name, n.ordinal));
    for c in &n.children {
        preorder(c, out);
    }
}

#[test]
fn report_round_trips_through_json_bit_exactly() {
    let r = report_at(1);
    let parsed = RunReport::from_json(&r.to_json()).unwrap();
    assert_eq!(parsed, r);
    // And the canonical projection round-trips too (it is itself a report).
    let c = r.canonical();
    assert_eq!(RunReport::from_json(&c.to_json()).unwrap(), c);
}

#[test]
fn span_tree_and_metrics_are_identical_at_one_and_four_threads() {
    let r1 = report_at(1);
    let r4 = report_at(4);

    // The full canonical projections — stages, transform deltas, cache
    // stats, hfmin/timing summaries, metric values, span tree — match.
    assert_eq!(
        r1.canonical(),
        r4.canonical(),
        "canonical RunReport must not depend on the worker count"
    );
    // Spot-check the parts the projection is meant to pin, so a future
    // canonical() bug cannot silently weaken this test.
    let (s1, s4) = (r1.spans.as_ref().unwrap(), r4.spans.as_ref().unwrap());
    let (mut w1, mut w4) = (Vec::new(), Vec::new());
    preorder(s1, &mut w1);
    preorder(s4, &mut w4);
    assert_eq!(w1, w4, "span tree shape must be thread-invariant");
    assert_eq!(
        r1.metrics, r4.metrics,
        "metric values must be thread-invariant"
    );
    assert_eq!(r1.transforms, r4.transforms);
    // Both runs did real work and recorded it.
    assert!(w1.iter().any(|n| n.starts_with("flow.stage3.synthesize")));
    assert!(w1.iter().any(|n| n.starts_with("flow.synthesize")));
    assert!(r1.hfmin.is_some());
}
