//! Integration tests for the two-tier timing-verification engine: the
//! interval analysis must be sound against the Monte-Carlo sampler, the
//! paper's DIFFEQ arc 10 must fall to the interval tier alone, the shared
//! `TimingCache` must make repeat explorer sweeps cheap, and caching must
//! never change what the explorer ranks.

use std::time::Instant;

use adcs::explore::{explore_exhaustive_flow, ExploreOptions, Objective};
use adcs::flow::{Flow, FlowOptions};
use adcs::gt::{gt1_loop_parallelism, gt2_remove_dominated, gt3_relative_timing_cached};
use adcs::timing::{timing_redundant, IntervalVerdict, TimingAnalysis, TimingCache, TimingModel};
use adcs_cdfg::benchmarks::{diffeq, random_straight_line, DiffeqParams};
use adcs_cdfg::Cdfg;
use proptest::prelude::*;

fn diffeq_model(d: &adcs_cdfg::benchmarks::DiffeqDesign) -> TimingModel {
    TimingModel::uniform(1, 2)
        .with_fu(d.mul1, 2, 4)
        .with_fu(d.mul2, 2, 4)
        .with_samples(24)
}

/// GT1+GT2-prepared DIFFEQ graph — the state GT3 sees inside the flow.
fn prepared_diffeq() -> (Cdfg, adcs_cdfg::benchmarks::DiffeqDesign) {
    let d = diffeq(DiffeqParams::default()).unwrap();
    let mut g = d.cdfg.clone();
    gt1_loop_parallelism(&mut g).unwrap();
    gt2_remove_dominated(&mut g).unwrap();
    (g, d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness: every arc the interval analysis proves redundant must
    /// also look redundant to the Monte-Carlo sampler — by construction
    /// the interval verdict covers *all* delay assignments, so no sampled
    /// assignment may produce a counterexample.
    #[test]
    fn interval_redundant_implies_sampling_redundant(
        seed in 1u64..500,
        n_ops in 2usize..10,
        n_fus in 2usize..4,
        lo in 1u64..3,
        span in 0u64..4,
    ) {
        let d = random_straight_line(seed, n_ops, n_fus).unwrap();
        let model = TimingModel::uniform(lo, lo + span).with_samples(16);
        let analysis = TimingAnalysis::build(&d.cdfg, &d.initial, &model).unwrap();
        for arc in d.cdfg.inter_fu_arcs() {
            if analysis.arc_verdict(&d.cdfg, arc) == IntervalVerdict::Redundant {
                prop_assert!(
                    timing_redundant(&d.cdfg, arc, &d.initial, &model).unwrap(),
                    "interval analysis called arc {arc:?} redundant but sampling disagrees \
                     (seed {seed}, {n_ops} ops, {n_fus} fus, delays [{lo}, {}])",
                    lo + span
                );
            }
        }
    }
}

/// The paper's worked GT3 example must be decided by the interval tier
/// alone: arc 10 is deleted without a single sampling execution.
#[test]
fn diffeq_arc_10_falls_to_the_interval_tier_without_sampling() {
    let (mut g, d) = prepared_diffeq();
    let m2 = g.node_by_label("M2 := U * dx").unwrap();
    let u = g.node_by_label("U := U - M1").unwrap();
    assert!(g.arcs().any(|(_, a)| a.src == m2 && a.dst == u));

    let cache = TimingCache::new();
    let rep = gt3_relative_timing_cached(&mut g, &d.initial, &diffeq_model(&d), &cache).unwrap();

    assert!(
        !g.arcs().any(|(_, a)| a.src == m2 && a.dst == u),
        "arc 10 should be deleted: {rep:?}"
    );
    assert_eq!(
        rep.timing.samples_run, 0,
        "the interval analysis should decide every DIFFEQ query: {rep:?}"
    );
    assert_eq!(rep.timing.fallback_decided, 0, "{rep:?}");
    assert!(rep.timing.interval_decided > 0, "{rep:?}");
}

/// Direct interval verdict on the raw DIFFEQ graph (no GT1/GT2): same
/// pinning as `timing.rs`'s Monte-Carlo test, but conclusively.
#[test]
fn diffeq_arc_10_interval_verdict_is_redundant_on_the_raw_graph() {
    let d = diffeq(DiffeqParams::default()).unwrap();
    let g = &d.cdfg;
    let m2 = g.node_by_label("M2 := U * dx").unwrap();
    let u = g.node_by_label("U := U - M1").unwrap();
    let arc10 = g
        .arcs()
        .find(|(_, a)| a.src == m2 && a.dst == u)
        .map(|(id, _)| id)
        .unwrap();
    let model = diffeq_model(&d);
    let analysis = TimingAnalysis::build(g, &d.initial, &model).unwrap();
    assert_eq!(analysis.arc_verdict(g, arc10), IntervalVerdict::Redundant);
}

/// The engine must beat the pure Monte-Carlo baseline by a wide margin on
/// the DIFFEQ flow — the acceptance gate asks for ≥ 5x; the interval tier
/// typically delivers far more (one canonical run vs. samples × arcs ×
/// rounds full executions).
#[test]
fn gt3_on_diffeq_is_at_least_5x_faster_than_pure_monte_carlo() {
    let (g0, d) = prepared_diffeq();
    let model = diffeq_model(&d);

    // Pure Monte-Carlo baseline: the pre-engine GT3 loop — sample every
    // candidate, restart the scan after each removal.
    let baseline_start = Instant::now();
    let mut g = g0.clone();
    let mut baseline_removed = Vec::new();
    loop {
        let mut removed_one = false;
        for id in g.inter_fu_arcs() {
            if g.arc(id).is_err() {
                continue;
            }
            if timing_redundant(&g, id, &d.initial, &model).unwrap() {
                g.remove_arc(id).unwrap();
                baseline_removed.push(id);
                removed_one = true;
                break;
            }
        }
        if !removed_one {
            break;
        }
    }
    let baseline = baseline_start.elapsed();

    let engine_start = Instant::now();
    let mut g = g0.clone();
    let rep = gt3_relative_timing_cached(&mut g, &d.initial, &model, &TimingCache::new()).unwrap();
    let engine = engine_start.elapsed();

    assert_eq!(
        rep.removed, baseline_removed,
        "engines must agree on what GT3 removes"
    );
    assert!(
        engine * 5 <= baseline,
        "expected >= 5x speedup, got baseline {baseline:?} vs engine {engine:?}"
    );
}

fn sweep_base() -> FlowOptions {
    FlowOptions {
        verify_seeds: 2,
        timing: TimingModel::uniform(1, 2)
            .with_class("MUL", 2, 4)
            .with_samples(8),
        ..FlowOptions::default()
    }
}

/// A repeat exhaustive sweep over the same `Flow` must be served almost
/// entirely from the warm `TimingCache`: over half the queries hit, and
/// over half of the Monte-Carlo baseline's simulations are skipped.
#[test]
fn warm_cache_repeat_sweep_skips_most_timing_samples() {
    let d = diffeq(DiffeqParams::default()).unwrap();
    let flow = Flow::new(d.cdfg.clone(), d.initial.clone());
    let base = sweep_base();
    let opts = ExploreOptions::default();

    let cold = explore_exhaustive_flow(&flow, &base, Objective::ChannelsThenStates, opts).unwrap();
    let warm = explore_exhaustive_flow(&flow, &base, Objective::ChannelsThenStates, opts).unwrap();
    assert_eq!(cold.len(), warm.len());

    let queries: u64 = warm.iter().map(|p| p.timing_queries).sum();
    let hits: u64 = warm.iter().map(|p| p.timing_cache_hits).sum();
    let run: u64 = warm.iter().map(|p| p.timing_samples_run).sum();
    let avoided: u64 = warm.iter().map(|p| p.timing_samples_avoided).sum();
    assert!(queries > 0);
    assert!(
        hits * 2 >= queries,
        "warm sweep should answer at least half its queries from the cache: \
         {hits} hits of {queries}"
    );
    assert!(
        avoided * 2 >= run + avoided,
        "warm sweep should skip at least half the Monte-Carlo baseline's samples: \
         {run} run, {avoided} avoided"
    );
}

/// Score transparency: caching may only change how fast verdicts arrive,
/// never what they are — cached and uncached sweeps rank byte-identically.
#[test]
fn cached_and_uncached_sweeps_rank_identically() {
    let d = diffeq(DiffeqParams::default()).unwrap();
    let base = sweep_base();
    let uncached_base = FlowOptions {
        timing_cache: false,
        minimize_cache: false,
        ..base.clone()
    };
    let flow = Flow::new(d.cdfg.clone(), d.initial.clone());
    let opts = ExploreOptions::default();

    let cached =
        explore_exhaustive_flow(&flow, &base, Objective::ChannelsThenStates, opts).unwrap();
    let uncached =
        explore_exhaustive_flow(&flow, &uncached_base, Objective::ChannelsThenStates, opts)
            .unwrap();

    let render = |points: &[adcs::explore::ExplorePoint]| -> String {
        points
            .iter()
            .map(|p| {
                format!(
                    "{}:{}:{}ch:{}st:{}tr\n",
                    p.label(),
                    p.score,
                    p.channels,
                    p.states,
                    p.transitions
                )
            })
            .collect()
    };
    assert_eq!(render(&cached), render(&uncached));
}
