//! Offline shim of [criterion](https://docs.rs/criterion) with the surface
//! this workspace's benches use: `Criterion`, `benchmark_group` (sample size
//! and measurement time), `bench_function`, `criterion_group!`/
//! `criterion_main!`, and `black_box`.
//!
//! Measurement model: per bench, a short warm-up estimates the cost of one
//! iteration, then `sample_size` samples are taken, each averaging over
//! enough iterations to fill `measurement_time / sample_size`. The report
//! prints `[min median max]` per-iteration times, criterion-style. There is
//! no statistical outlier analysis, HTML report, or baseline comparison.

use std::fmt;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement markers (only wall-clock exists in the shim).
pub mod measurement {
    /// Wall-clock time measurement.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct WallTime;
}

/// Benchmark driver: holds the CLI filter and default sampling settings.
#[derive(Clone, Debug)]
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            sample_size: 30,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Reads the benchmark-name filter from the command line (the first
    /// argument that is not a `--flag` or a flag's value).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" | "--nocapture" | "--quiet" | "--exact" => {}
                "--sample-size" | "--measurement-time" | "--warm-up-time" | "--profile-time" => {
                    let _ = args.next();
                }
                s if s.starts_with('-') => {}
                s => {
                    self.filter = Some(s.to_string());
                    break;
                }
            }
        }
        self
    }

    /// Default number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(
        &mut self,
        name: S,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
            _measurement: PhantomData,
        }
    }

    /// Runs a single benchmark.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let (n, t) = (self.sample_size, self.measurement_time);
        self.run_one(id.as_ref(), n, t, f);
        self
    }

    /// No-op (the real crate renders its summary here).
    pub fn final_summary(&mut self) {}

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        sample_size: usize,
        measurement_time: Duration,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            sample_size,
            measurement_time,
            samples: Vec::new(),
        };
        f(&mut b);
        report(id, &b.samples);
    }
}

/// A group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a, M> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Sets the target total measurement time per bench.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = Some(t);
        self
    }

    /// Runs one benchmark inside the group (reported as `group/name`).
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        let t = self
            .measurement_time
            .unwrap_or(self.criterion.measurement_time);
        self.criterion.run_one(&full, n, t, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures a routine: warm-up, then `sample_size` samples of
    /// `iters`-iteration batches sized to fill the measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-iteration cost estimate (at least one run).
        let warmup_budget = Duration::from_millis(300);
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_iters == 0 || warmup_start.elapsed() < warmup_budget {
            black_box(f());
            warmup_iters += 1;
            if warmup_iters >= 10_000 {
                break;
            }
        }
        let est = warmup_start.elapsed() / u32::try_from(warmup_iters).unwrap_or(u32::MAX);

        let per_sample = self.measurement_time / u32::try_from(self.sample_size).unwrap_or(1);
        let iters = if est.is_zero() {
            1000
        } else {
            (per_sample.as_nanos() / est.as_nanos().max(1)).clamp(1, 1_000_000) as u32
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let median = sorted[sorted.len() / 2];
    println!(
        "{id:<40} time:   [{} {} {}]",
        Pretty(min),
        Pretty(median),
        Pretty(max)
    );
}

/// Criterion-style duration formatting (`1.2345 ms`).
struct Pretty(Duration);

impl fmt::Display for Pretty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0.as_nanos();
        let (val, unit) = if ns >= 1_000_000_000 {
            (ns as f64 / 1e9, "s")
        } else if ns >= 1_000_000 {
            (ns as f64 / 1e6, "ms")
        } else if ns >= 1_000 {
            (ns as f64 / 1e3, "µs")
        } else {
            (ns as f64, "ns")
        };
        write!(f, "{val:.4} {unit}")
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion {
            sample_size: 3,
            measurement_time: Duration::from_millis(10),
            ..Criterion::default()
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_settings_apply() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(2).measurement_time(Duration::from_millis(5));
        let mut ran = false;
        g.bench_function("inner", |b| b.iter(|| ran = true));
        g.finish();
        assert!(ran);
    }
}
