//! Collection strategies (`proptest::collection`).

use std::ops::Range;

use crate::{Strategy, TestRng};

/// Strategy producing `Vec`s with lengths drawn from `len` and elements
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// The strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.clone().generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
