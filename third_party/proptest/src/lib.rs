//! Offline shim of [proptest](https://docs.rs/proptest) providing exactly the
//! surface this workspace uses: range / tuple / `collection::vec` strategies,
//! `prop_map`, the `proptest!` macro, `prop_assert*` / `prop_assume!`, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case panics with the generated values'
//!   `Debug` form and the deterministic case seed, which is enough to replay.
//! - **Deterministic by default.** Case `i` of every test derives its RNG from
//!   a fixed base seed and `i`, so runs are reproducible without a
//!   regressions file (any `.proptest-regressions` files are ignored).
//! - Binding patterns in `proptest!` must be plain identifiers.

use std::cell::Cell;
use std::ops::Range;

pub mod collection;

/// Error produced by a single test case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test as a whole fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Constructs a failure with a message (mirrors proptest's API).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection with a message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Per-test configuration. Only the fields this workspace touches exist.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Cap on consecutive `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 4096,
        }
    }
}

/// Deterministic splitmix64 RNG used to drive generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG (0 is remapped so the stream is never all-zero).
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % bound
    }
}

/// A generator of values (proptest's core trait, minus shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start);
                self.start.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<char> {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        let (a, b) = (self.start as u32, self.end as u32);
        assert!(a < b, "empty range strategy");
        loop {
            if let Some(c) = char::from_u32(a + rng.below((b - a) as u64) as u32) {
                return c;
            }
        }
    }
}

impl Strategy for bool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0 / 0);
tuple_strategy!(S0 / 0, S1 / 1);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);

thread_local! {
    static CURRENT_SEED: Cell<u64> = const { Cell::new(0) };
}

/// The seed of the case currently being generated/run (for failure reports).
pub fn current_case_seed() -> u64 {
    CURRENT_SEED.with(Cell::get)
}

/// Drives one `proptest!`-generated test: runs `config.cases` successful
/// cases, skipping rejected ones, panicking on the first failure.
///
/// `run_case` receives a seeded RNG and returns the case outcome together
/// with the `Debug` rendering of the generated inputs (used on failure).
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut run_case: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    // Stable base seed: test name hash, so distinct tests explore distinct
    // streams but every run of the same test replays the same cases.
    let mut base = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        base ^= u64::from(b);
        base = base.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u64;
    while passed < config.cases {
        let seed = base.wrapping_add(case);
        case += 1;
        CURRENT_SEED.with(|c| c.set(seed));
        let mut rng = TestRng::new(seed);
        let (inputs, outcome) = run_case(&mut rng);
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest '{test_name}': too many prop_assume! rejections \
                         ({rejected}) before reaching {} cases",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{test_name}' failed at case #{passed} (seed {seed:#x})\n\
                     inputs: {inputs}\n{msg}"
                );
            }
        }
    }
}

/// Declares property tests. Supports the subset of proptest's grammar used
/// here: an optional `#![proptest_config(expr)]` header and `#[test]`
/// functions whose arguments are `ident in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(&config, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}  ",)+),
                        $(&$arg),+
                    );
                    let __outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    (__inputs, __outcome)
                });
            }
        )*
    };
}

/// `assert!` that fails the current case instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($a), stringify!($b), a, b, format!($($fmt)*)
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The usual glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let strat = (0u32..10, 0u32..10).prop_map(|(a, b)| a + b);
        let mut rng = TestRng::new(42);
        for _ in 0..100 {
            assert!(strat.generate(&mut rng) < 19);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = collection::vec(0u64..1000, 1..8);
        let a = strat.generate(&mut TestRng::new(9));
        let b = strat.generate(&mut TestRng::new(9));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_and_asserts(x in 0usize..50, y in 0usize..50) {
            prop_assume!(x + y > 0);
            prop_assert!(x < 50 && y < 50);
            prop_assert_eq!(x + y, y + x);
        }
    }
}
