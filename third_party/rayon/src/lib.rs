//! Offline shim of [rayon](https://docs.rs/rayon) sufficient for this
//! workspace's fan-out workloads: `par_iter()` / `into_par_iter()` with
//! `map`, `filter_map`, and ordered `collect`, plus `ThreadPoolBuilder` /
//! `ThreadPool::install` to bound the worker count and `join` for two-way
//! splits.
//!
//! Differences from real rayon:
//!
//! - **Eager adapters.** `map` runs its closure across worker threads
//!   immediately (dynamic index-stealing over an atomic cursor) and buffers
//!   the results; `collect` is then a plain ordered drain. Chained adapters
//!   therefore make one parallel pass each.
//! - **Scoped OS threads, no persistent pool.** Each parallel pass spawns
//!   `current_num_threads()` scoped threads. That costs microseconds — noise
//!   next to the millisecond-scale flow evaluations parallelized here.
//! - Results are always produced **in input order**, so parallel and
//!   sequential runs of the same pipeline are bit-identical.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    static POOL_OVERRIDE: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

/// The worker count a parallel pass started on this thread will use:
/// an installed [`ThreadPool`]'s size, else `RAYON_NUM_THREADS`, else
/// available hardware parallelism.
pub fn current_num_threads() -> usize {
    if let Some(n) = POOL_OVERRIDE.with(std::cell::Cell::get) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Builder for a [`ThreadPool`] (only `num_threads` is supported).
#[derive(Clone, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A fresh builder using the default worker count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count (`0` means the default).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Never fails in the shim; the `Result` mirrors
    /// rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// Error type for [`ThreadPoolBuilder::build`] (never produced by the shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A bound on worker counts: parallel passes started inside
/// [`ThreadPool::install`] use this pool's thread count.
#[derive(Clone, Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's worker count as the ambient parallelism.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_OVERRIDE.with(|c| c.replace(Some(self.num_threads)));
        let out = f();
        POOL_OVERRIDE.with(|c| c.set(prev));
        out
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

/// Ordered parallel map: applies `f` to every item, distributing indices
/// over `current_num_threads()` scoped workers via an atomic cursor, and
/// returns results in input order.
fn run_ordered<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n_threads = current_num_threads().min(items.len().max(1));
    if n_threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..slots.len()).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..n_threads {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(slot) = slots.get(i) else { break };
                let item = slot.lock().unwrap().take().expect("each index taken once");
                let out = f(item);
                *results[i].lock().unwrap() = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// An ordered parallel iterator over buffered items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map (eager; results stay in input order).
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: run_ordered(self.items, f),
        }
    }

    /// Parallel filter-map (eager; survivor order matches input order).
    pub fn filter_map<R: Send, F: Fn(T) -> Option<R> + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: run_ordered(self.items, f).into_iter().flatten().collect(),
        }
    }

    /// Drains the (already computed) results into any collection.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Number of buffered items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! range_into_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;

            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

range_into_par!(u32, u64, usize, i32, i64);

/// Types whose references yield a parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a shared reference).
    type Item: Send;

    /// Parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The usual glob import, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_refs() {
        let data = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        assert_eq!(data.len(), 4);
    }

    #[test]
    fn filter_map_keeps_survivor_order() {
        let v: Vec<u32> = (0u32..100)
            .into_par_iter()
            .filter_map(|i| (i % 3 == 0).then_some(i))
            .collect();
        assert_eq!(v, (0..100).filter(|i| i % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn install_bounds_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let (n, v) = pool.install(|| {
            let n = current_num_threads();
            let v: Vec<usize> = (0..16usize).into_par_iter().map(|i| i).collect();
            (n, v)
        });
        assert_eq!(n, 1);
        assert_eq!(v, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn one_thread_runs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let main_id = std::thread::current().id();
        let ids: Vec<std::thread::ThreadId> = pool.install(|| {
            (0..4usize)
                .into_par_iter()
                .map(|_| std::thread::current().id())
                .collect()
        });
        assert!(ids.iter().all(|&id| id == main_id));
    }
}
